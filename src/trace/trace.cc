#include "tocttou/trace/trace.h"

#include <algorithm>
#include <map>

#include "tocttou/common/error.h"
#include "tocttou/common/strings.h"

namespace tocttou::trace {

const char* to_string(Category c) {
  switch (c) {
    case Category::compute:
      return "compute";
    case Category::syscall:
      return "syscall";
    case Category::sem_wait:
      return "sem_wait";
    case Category::io_wait:
      return "io_wait";
    case Category::ready_wait:
      return "ready_wait";
    case Category::trap:
      return "trap";
    case Category::marker:
      return "marker";
  }
  return "?";
}

void TraceLog::add(TraceEvent ev) {
  TOCTTOU_CHECK(ev.end >= ev.begin, "trace event must not end before it begins");
  events_.push_back(std::move(ev));
}

void TraceLog::set_process_name(Pid pid, std::string name) {
  for (auto& [p, n] : names_) {
    if (p == pid) {
      n = std::move(name);
      return;
    }
  }
  names_.emplace_back(pid, std::move(name));
}

std::string TraceLog::process_name(Pid pid) const {
  for (const auto& [p, n] : names_) {
    if (p == pid) return n;
  }
  return strfmt("pid%u", pid);
}

std::vector<Pid> TraceLog::pids() const {
  std::vector<Pid> out;
  for (const auto& ev : events_) {
    if (std::find(out.begin(), out.end(), ev.pid) == out.end()) {
      out.push_back(ev.pid);
    }
  }
  return out;
}

std::vector<TraceEvent> TraceLog::for_pid(Pid pid) const {
  std::vector<TraceEvent> out;
  for (const auto& ev : events_) {
    if (ev.pid == pid) out.push_back(ev);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.begin < b.begin;
                   });
  return out;
}

std::optional<TraceEvent> TraceLog::find_first(Pid pid, Category cat,
                                               std::string_view label,
                                               SimTime from) const {
  std::optional<TraceEvent> best;
  for (const auto& ev : events_) {
    if (ev.pid == pid && ev.category == cat && ev.label == label &&
        ev.begin >= from) {
      if (!best || ev.begin < best->begin) best = ev;
    }
  }
  return best;
}

std::vector<TraceEvent> TraceLog::find_all(Pid pid, Category cat,
                                           std::string_view label) const {
  std::vector<TraceEvent> out;
  for (const auto& ev : events_) {
    if (ev.pid == pid && ev.category == cat && ev.label == label) {
      out.push_back(ev);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.begin < b.begin;
            });
  return out;
}

SimTime TraceLog::end_time() const {
  SimTime t = SimTime::origin();
  for (const auto& ev : events_) t = max(t, ev.end);
  return t;
}

void TraceLog::clear() {
  events_.clear();
  names_.clear();
}

std::string TraceLog::to_csv() const {
  std::string out = "begin_us,end_us,pid,name,cpu,category,label,detail\n";
  // ~80 bytes covers a typical row; reserve once so a 10^5-event trace
  // does not reallocate the output string mid-export.
  out.reserve(out.size() + events_.size() * 80);
  for (const auto& ev : events_) {
    // Free-text fields (name, label, detail) go through RFC 4180
    // escaping; a label like `rename("a,b")` must stay one field.
    out += strfmt("%.3f,%.3f,%u,%s,%d,%s,%s,%s\n", ev.begin.us(), ev.end.us(),
                  ev.pid, csv_escape(process_name(ev.pid)).c_str(), ev.cpu,
                  to_string(ev.category), csv_escape(ev.label).c_str(),
                  csv_escape(ev.detail).c_str());
  }
  return out;
}

namespace {

char fill_char(Category c) {
  switch (c) {
    case Category::compute:
      return '.';
    case Category::syscall:
      return '=';
    case Category::sem_wait:
      return '~';
    case Category::io_wait:
      return '#';
    case Category::ready_wait:
      return ' ';
    case Category::trap:
      return 'T';
    case Category::marker:
      return '!';
  }
  return '?';
}

}  // namespace

std::string render_gantt(const TraceLog& log, const GanttOptions& opts) {
  if (log.empty()) return "(empty trace)\n";
  SimTime t0 = opts.from.value_or(SimTime::never());
  SimTime t1 = opts.to.value_or(SimTime::origin());
  if (!opts.from || !opts.to) {
    for (const auto& ev : log.events()) {
      if (!opts.from) t0 = min(t0, ev.begin);
      if (!opts.to) t1 = max(t1, ev.end);
    }
  }
  if (t1 <= t0) t1 = t0 + Duration::micros(1);
  const double span_ns = static_cast<double>((t1 - t0).ns());
  const int width = std::max(opts.width, 20);

  auto col = [&](SimTime t) {
    double frac = static_cast<double>((t - t0).ns()) / span_ns;
    frac = std::clamp(frac, 0.0, 1.0);
    return static_cast<int>(frac * (width - 1));
  };

  const auto pids = log.pids();
  std::size_t name_w = 8;
  for (Pid p : pids) name_w = std::max(name_w, log.process_name(p).size());

  // One column of the axis, for the merge threshold.
  const Duration column =
      Duration::nanos(static_cast<std::int64_t>(span_ns) / width + 1);
  auto merged_events = [&](Pid p) {
    std::vector<TraceEvent> evs = log.for_pid(p);
    if (!opts.merge_adjacent) return evs;
    std::vector<TraceEvent> out;
    for (auto& ev : evs) {
      if (!out.empty() && ev.category != Category::marker &&
          out.back().category == ev.category &&
          out.back().label == ev.label && ev.begin >= out.back().end &&
          ev.begin - out.back().end <= column) {
        out.back().end = ev.end;
        continue;
      }
      out.push_back(ev);
    }
    return out;
  };

  std::string out;
  out += strfmt("%s  time: %.1fus .. %.1fus (%.1fus span)\n",
                pad_right("", name_w).c_str(), t0.us(), t1.us(),
                (t1 - t0).us());
  for (Pid p : pids) {
    const auto events = merged_events(p);
    std::string row(static_cast<std::size_t>(width), ' ');
    // Paint fills first, then overlay labels so short labels stay visible.
    for (const auto& ev : events) {
      if (ev.category == Category::marker) continue;
      if (ev.end <= t0 || ev.begin >= t1) continue;
      const int a = col(max(ev.begin, t0));
      const int b = std::max(a, col(min(ev.end, t1)));
      for (int c = a; c <= b && c < width; ++c) {
        row[static_cast<std::size_t>(c)] = fill_char(ev.category);
      }
    }
    for (const auto& ev : events) {
      if (ev.category == Category::marker && !opts.show_markers) continue;
      if (ev.end < t0 || ev.begin > t1) continue;
      const int a = col(max(ev.begin, t0));
      const int b = std::max(a, col(min(ev.end, t1)));
      const int seg = b - a + 1;
      std::string label = ev.label;
      if (ev.category == Category::marker) label = "^" + label;
      const int n = std::min<int>(static_cast<int>(label.size()), seg);
      for (int i = 0; i < n && a + i < width; ++i) {
        row[static_cast<std::size_t>(a + i)] = label[static_cast<std::size_t>(i)];
      }
      // Segment boundary ticks for non-instant events.
      if (ev.category != Category::marker && seg >= 2) {
        row[static_cast<std::size_t>(a)] = '|';
        if (n < seg) {
          for (int i = 0; i < n && a + 1 + i < width; ++i) {
            row[static_cast<std::size_t>(a + 1 + i)] =
                label[static_cast<std::size_t>(i)];
          }
        }
        if (b < width) row[static_cast<std::size_t>(b)] = '|';
      }
    }
    out += pad_right(log.process_name(p), name_w) + "  " + row + "\n";
  }
  if (opts.show_legend) {
    out +=
        strfmt("%s  legend: |name..| syscall, '.' compute, '~' semaphore "
               "wait, '#' I/O wait, 'T' trap, '^' marker\n",
               pad_right("", name_w).c_str());
  }
  return out;
}

}  // namespace tocttou::trace
