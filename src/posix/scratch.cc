#include "tocttou/posix/scratch.h"

#include <dirent.h>
#include <fcntl.h>
#include <sched.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace tocttou::posix {

namespace {

void remove_tree(const std::string& path) {
  DIR* d = opendir(path.c_str());
  if (d != nullptr) {
    while (dirent* e = readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      const std::string child = path + "/" + name;
      struct stat st{};
      if (lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        remove_tree(child);
      } else {
        ::unlink(child.c_str());
      }
    }
    closedir(d);
  }
  ::rmdir(path.c_str());
}

}  // namespace

ScratchDir::ScratchDir(const std::string& prefix) {
  const char* tmp = getenv("TMPDIR");
  std::string tmpl = std::string(tmp != nullptr ? tmp : "/tmp") + "/" +
                     prefix + "-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (mkdtemp(buf.data()) == nullptr) {
    throw std::runtime_error("mkdtemp failed: " +
                             std::string(std::strerror(errno)));
  }
  path_ = buf.data();
}

ScratchDir::~ScratchDir() {
  if (!path_.empty()) remove_tree(path_);
}

std::int64_t now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

bool pin_to_cpu(int cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
}

int online_cpus() {
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n < 1 ? 1 : static_cast<int>(n);
}

void write_file(const std::string& path, std::uint64_t bytes) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    throw std::runtime_error("open failed: " + path);
  }
  char buf[4096];
  std::memset(buf, 'x', sizeof(buf));
  std::uint64_t left = bytes;
  while (left > 0) {
    const auto n = static_cast<size_t>(
        left < sizeof(buf) ? left : sizeof(buf));
    if (::write(fd, buf, n) < 0) break;
    left -= n;
  }
  ::close(fd);
}

}  // namespace tocttou::posix
