#include "tocttou/posix/live_race.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <sched.h>

#include <atomic>
#include <cerrno>
#include <stdexcept>
#include <thread>

#include "tocttou/posix/scratch.h"

namespace tocttou::posix {

namespace {

/// Busy-spin for roughly `spins` iterations (prevents the compiler from
/// collapsing the victim's "computation gap").
void spin(std::uint64_t spins) {
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < spins; ++i) {
    sink = sink + 1;
  }
}

struct RoundChannel {
  std::atomic<int> phase{0};  // 0 idle, 1 armed, 2 victim done, 3 att done
  std::atomic<bool> quit{false};
  std::atomic<std::uint64_t> old_ino{0};  // target's inode before rename
};

}  // namespace

LiveRaceResult run_live_race(const LiveRaceConfig& cfg) {
  LiveRaceResult res;
  res.cpus = online_cpus();

  ScratchDir dir("tocttou-live");
  const std::string target = dir.file("target");
  const std::string temp = dir.file("temp");
  const std::string decoy = dir.file("decoy");
  const std::string dummy = dir.file("dummy");

  write_file(decoy, 64);
  ::chmod(decoy.c_str(), 0600);

  RoundChannel ch;
  std::atomic<int> successes{0};
  std::atomic<int> detections{0};

  std::thread attacker([&] {
    bool pinned = !cfg.pin_threads || pin_to_cpu(1 % res.cpus);
    (void)pinned;
    if (cfg.prefault_attacker) {
      // v2 trick: touch the unlink/symlink code paths before the race.
      write_file(dummy, 1);
      ::unlink(dummy.c_str());
      ::symlink(decoy.c_str(), dummy.c_str());
      ::unlink(dummy.c_str());
    }
    while (!ch.quit.load(std::memory_order_acquire)) {
      const int ph = ch.phase.load(std::memory_order_acquire);
      if (ph != 1 && ph != 2) {
        // Not armed; be polite on single-CPU hosts.
        sched_yield();
        continue;
      }
      // Armed: poll for the rename (the target's inode changes from the
      // staged one — the analogue of "owner became root").
      const std::uint64_t base = ch.old_ino.load(std::memory_order_acquire);
      bool detected = false;
      while (true) {
        struct stat st{};
        if (::stat(target.c_str(), &st) == 0 &&
            static_cast<std::uint64_t>(st.st_ino) != base) {
          detected = true;
          ::unlink(target.c_str());
          ::symlink(decoy.c_str(), target.c_str());
          break;
        }
        if (ch.phase.load(std::memory_order_acquire) >= 2) break;
      }
      if (detected) detections.fetch_add(1, std::memory_order_relaxed);
      ch.phase.store(3, std::memory_order_release);
    }
  });

  if (cfg.pin_threads) {
    res.threads_pinned = pin_to_cpu(0) && res.cpus > 1;
  }

  for (int round = 0; round < cfg.rounds; ++round) {
    // Stage: target exists (old inode), temp holds the new content.
    ::unlink(target.c_str());
    write_file(target, cfg.file_bytes);
    write_file(temp, cfg.file_bytes);
    ::chmod(decoy.c_str(), 0600);
    struct stat staged{};
    ::stat(target.c_str(), &staged);
    ch.old_ino.store(static_cast<std::uint64_t>(staged.st_ino),
                     std::memory_order_release);

    ch.phase.store(1, std::memory_order_release);
    // Victim: rename, gap, chmod, chown.
    const std::int64_t t_rename = now_ns();
    if (::rename(temp.c_str(), target.c_str()) != 0) {
      ch.phase.store(2, std::memory_order_release);
      while (ch.phase.load(std::memory_order_acquire) != 3) {
        sched_yield();
      }
      ch.phase.store(0, std::memory_order_release);
      continue;
    }
    spin(cfg.victim_gap_spins);
    const std::int64_t t_chmod = now_ns();
    ::chmod(target.c_str(), 0666);
    ::chown(target.c_str(), getuid(), getgid());
    ch.phase.store(2, std::memory_order_release);
    res.window_us.add(static_cast<double>(t_chmod - t_rename) / 1000.0);

    // Wait for the attacker to finish its round.
    while (ch.phase.load(std::memory_order_acquire) != 3) {
      sched_yield();
    }

    // Judge: did the chmod land on the decoy?
    struct stat st{};
    if (::stat(decoy.c_str(), &st) == 0 && (st.st_mode & 0777) == 0666) {
      successes.fetch_add(1, std::memory_order_relaxed);
    }
    ++res.rounds;
    ch.phase.store(0, std::memory_order_release);
  }

  ch.quit.store(true, std::memory_order_release);
  ch.phase.store(1, std::memory_order_release);  // unblock the poller
  attacker.join();

  res.successes = successes.load();
  res.detections = detections.load();
  return res;
}

HostSyscallCosts measure_host_syscall_costs(int iterations) {
  HostSyscallCosts out;
  ScratchDir dir("tocttou-cost");
  const std::string f = dir.file("probe");
  write_file(f, 64);

  struct stat st{};
  std::int64_t t0 = now_ns();
  for (int i = 0; i < iterations; ++i) ::stat(f.c_str(), &st);
  out.stat_us = static_cast<double>(now_ns() - t0) / 1000.0 / iterations;

  const std::string a = dir.file("a");
  const std::string b = dir.file("b");
  t0 = now_ns();
  for (int i = 0; i < iterations; ++i) {
    write_file(a, 1);
    ::unlink(a.c_str());
  }
  const double write_unlink =
      static_cast<double>(now_ns() - t0) / 1000.0 / iterations;

  t0 = now_ns();
  for (int i = 0; i < iterations; ++i) write_file(a, 1);
  const double write_only =
      static_cast<double>(now_ns() - t0) / 1000.0 / iterations;
  out.unlink_us = write_unlink > write_only ? write_unlink - write_only : 0.0;

  t0 = now_ns();
  for (int i = 0; i < iterations; ++i) {
    ::symlink(f.c_str(), b.c_str());
    ::unlink(b.c_str());
  }
  out.symlink_us =
      static_cast<double>(now_ns() - t0) / 1000.0 / iterations / 2.0;

  write_file(a, 64);
  t0 = now_ns();
  for (int i = 0; i < iterations; ++i) {
    ::rename(a.c_str(), b.c_str());
    ::rename(b.c_str(), a.c_str());
  }
  out.rename_us =
      static_cast<double>(now_ns() - t0) / 1000.0 / iterations / 2.0;
  return out;
}

}  // namespace tocttou::posix
