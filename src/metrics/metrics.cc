#include "tocttou/metrics/metrics.h"

#include <bit>
#include <cstdint>
#include <limits>

#include "tocttou/common/strings.h"

namespace tocttou::metrics {

int Histogram::bucket_index(std::int64_t v) {
  if (v <= 1) return 0;
  const int w = std::bit_width(static_cast<std::uint64_t>(v));  // >= 2
  const int idx = w - 1;
  return idx < kBuckets ? idx : kBuckets - 1;
}

std::int64_t Histogram::bucket_ceil(int i) {
  if (i <= 0) return 1;
  if (i >= kBuckets - 1) return std::numeric_limits<std::int64_t>::max();
  return (std::int64_t{1} << (i + 1)) - 1;
}

void Histogram::observe(std::int64_t v) {
  if (v < 0) v = 0;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
  ++buckets_[bucket_index(v)];
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
}

std::uint64_t Histogram::bucket(int i) const {
  return (i >= 0 && i < kBuckets) ? buckets_[i] : 0;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

void Registry::count(std::string_view name, std::uint64_t delta) {
  counters_[std::string(name)] += delta;
}

void Registry::gauge_max(std::string_view name, std::int64_t v) {
  auto [it, inserted] = gauges_.emplace(std::string(name), v);
  if (!inserted && v > it->second) it->second = v;
}

void Registry::observe(std::string_view name, std::int64_t v) {
  histograms_[std::string(name)].observe(v);
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, v] : other.gauges_) gauge_max(name, v);
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
}

std::uint64_t Registry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::int64_t Registry::gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

const Histogram* Registry::histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

namespace {

/// Minimal JSON string escaping: the metric names are ASCII identifiers
/// in practice, but quotes/backslashes/control bytes must not corrupt
/// the document.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strfmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string Registry::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    out += strfmt("%s\n    \"%s\": %llu", first ? "" : ",",
                  json_escape(name).c_str(),
                  static_cast<unsigned long long>(v));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges_) {
    out += strfmt("%s\n    \"%s\": %lld", first ? "" : ",",
                  json_escape(name).c_str(), static_cast<long long>(v));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += strfmt(
        "%s\n    \"%s\": {\"count\": %llu, \"sum\": %lld, \"min\": %lld, "
        "\"max\": %lld, \"buckets\": [",
        first ? "" : ",", json_escape(name).c_str(),
        static_cast<unsigned long long>(h.count()),
        static_cast<long long>(h.sum()), static_cast<long long>(h.min()),
        static_cast<long long>(h.max()));
    bool bfirst = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h.bucket(i) == 0) continue;
      out += strfmt("%s[%lld, %llu]", bfirst ? "" : ", ",
                    static_cast<long long>(Histogram::bucket_ceil(i)),
                    static_cast<unsigned long long>(h.bucket(i)));
      bfirst = false;
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string Registry::to_csv() const {
  std::string out = "type,name,field,value\r\n";
  for (const auto& [name, v] : counters_) {
    out += strfmt("counter,%s,value,%llu\r\n", csv_escape(name).c_str(),
                  static_cast<unsigned long long>(v));
  }
  for (const auto& [name, v] : gauges_) {
    out += strfmt("gauge,%s,value,%lld\r\n", csv_escape(name).c_str(),
                  static_cast<long long>(v));
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = csv_escape(name);
    out += strfmt("histogram,%s,count,%llu\r\n", n.c_str(),
                  static_cast<unsigned long long>(h.count()));
    out += strfmt("histogram,%s,sum,%lld\r\n", n.c_str(),
                  static_cast<long long>(h.sum()));
    out += strfmt("histogram,%s,min,%lld\r\n", n.c_str(),
                  static_cast<long long>(h.min()));
    out += strfmt("histogram,%s,max,%lld\r\n", n.c_str(),
                  static_cast<long long>(h.max()));
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h.bucket(i) == 0) continue;
      out += strfmt("histogram,%s,bucket_le_%lld,%llu\r\n", n.c_str(),
                    static_cast<long long>(Histogram::bucket_ceil(i)),
                    static_cast<unsigned long long>(h.bucket(i)));
    }
  }
  return out;
}

}  // namespace tocttou::metrics
