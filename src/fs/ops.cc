// ServiceOp implementations for every modeled syscall.
//
// Each op is a small state machine driven by Kernel::advance_service; see
// include/tocttou/sim/service.h for the step protocol and DESIGN.md §4
// for which operation holds which semaphore.
#include <optional>

#include "tocttou/common/strings.h"
#include "tocttou/fs/vfs.h"
#include "tocttou/metrics/metrics.h"
#include "tocttou/sim/clone.h"
#include "tocttou/sim/faults.h"
#include "tocttou/sim/kernel.h"
#include "tocttou/trace/journal.h"

namespace tocttou::fs {

namespace {

using sim::ServiceContext;
using sim::ServiceOp;
using sim::Step;

// libc page ids: which syscall wrappers share a physical page of libc.
// unlink and symlink share one — the paper observed they "seem to be on
// the same page" (Section 6.2.2), which is why pre-faulting unlink also
// pre-faults symlink in attack program v2.
enum LibcPage {
  kPageStat = 1,
  kPageOpenClose = 2,
  kPageReadWrite = 3,
  kPageUnlinkSymlink = 4,
  kPageRename = 5,
  kPageChmodChown = 6,
  kPageMisc = 7,
};

Creds creds_of(const ServiceContext& ctx) {
  return Creds{ctx.proc.uid(), ctx.proc.gid()};
}

void hash_stat(tocttou::StateHasher& h, const StatBuf& s) {
  h.u64(s.ino);
  h.u32(static_cast<std::uint32_t>(s.type));
  h.u64(s.uid);
  h.u64(s.gid);
  h.u64(s.mode);
  h.u64(s.size_bytes);
}

void hash_sem_ptr(tocttou::StateHasher& h, const sim::Semaphore* s) {
  h.boolean(s != nullptr);
  if (s != nullptr) h.str(s->name());
}

/// Path resolution driver shared by all ops.
///
/// Policy `hold`: the final directory's semaphore is acquired and LEFT
/// HELD when resolution completes; the op must release held_dir_sem().
/// Policy `lockless_if_free`: the fast path reads the directory without
/// the semaphore when it is free; when a writer holds it the walk takes
/// the slow path (acquire, look up, pay stat_locked_tail, release) — this
/// is what makes a concurrent stat() block behind rename() and detect the
/// window "at the first moment" (Figure 10).
class Walker {
 public:
  enum class SemPolicy { lockless_if_free, hold };
  enum class Follow { yes, no };

  Walker(Vfs& vfs, std::string path, SemPolicy policy, Follow follow)
      : vfs_(vfs), path_(std::move(path)), policy_(policy), follow_(follow) {}

  /// Checkpoint rebind: mid-walk state carries a Vfs reference and
  /// possibly a held `Semaphore*` into an inode — both remap to the
  /// cloned filesystem (the Vfs clone registered every inode range).
  Walker(const Walker& o, sim::CloneMap& m)
      : vfs_(*m.remap(&o.vfs_)), path_(o.path_), policy_(o.policy_),
        follow_(o.follow_), st_(o.st_), depth_(o.depth_), err_(o.err_),
        parent_(o.parent_), final_name_(o.final_name_), target_(o.target_),
        snapshot_(o.snapshot_), held_(m.remap(o.held_)),
        slow_path_(o.slow_path_) {}

  /// Returns the next step to execute, or nullopt when resolution is done.
  std::optional<Step> advance(ServiceContext& ctx);

  /// Canonical state digest (DESIGN.md §10): mirrors the rebind ctor's
  /// field list. The held Semaphore* is hashed by name (stable identity).
  void hash_state(tocttou::StateHasher& h) const {
    h.str(path_);
    h.u32(static_cast<std::uint32_t>(policy_));
    h.u32(static_cast<std::uint32_t>(follow_));
    h.u32(static_cast<std::uint32_t>(st_));
    h.i64(depth_);
    h.u32(static_cast<std::uint32_t>(err_));
    h.u64(parent_);
    h.str(final_name_);
    h.u64(target_);
    hash_stat(h, snapshot_);
    hash_sem_ptr(h, held_);
    h.boolean(slow_path_);
  }

  Errno error() const { return err_; }  // prefix/symlink errors; ok otherwise
  Ino parent() const { return parent_; }
  const std::string& final_name() const { return final_name_; }
  Ino target() const { return target_; }
  bool target_exists() const { return target_ != kNoIno; }
  const StatBuf& snapshot() const { return snapshot_; }
  sim::Semaphore* held_dir_sem() const { return held_; }
  bool took_slow_path() const { return slow_path_; }

 private:
  enum class St {
    init,          // compute prefix cost
    prefix_done,   // prefix work charged; do the real walk + final policy
    locked,        // final dir semaphore acquired; look up
    locked_tail,   // lockless slow path: paid stat_locked_tail; release
    release_then_restart,  // symlink follow: sem released; restart
    done,
  };

  // Looks up the final component and snapshots it; returns true if the
  // walk must restart through a symlink.
  bool lookup_final();

  Vfs& vfs_;
  std::string path_;
  SemPolicy policy_;
  Follow follow_;
  St st_ = St::init;
  int depth_ = 0;
  Errno err_ = Errno::ok;
  Ino parent_ = kNoIno;
  std::string final_name_;
  Ino target_ = kNoIno;
  StatBuf snapshot_;
  sim::Semaphore* held_ = nullptr;
  bool slow_path_ = false;
};

bool Walker::lookup_final() {
  target_ = vfs_.lookup_in(parent_, final_name_);
  if (target_ != kNoIno) {
    const Inode& t = vfs_.inode(target_);
    snapshot_ = t.to_stat();
    if (t.is_symlink() && follow_ == Follow::yes) {
      path_ = t.symlink_target();
      ++depth_;
      return true;  // restart through the link
    }
  }
  return false;
}

std::optional<Step> Walker::advance(ServiceContext& ctx) {
  (void)ctx;
  while (true) {
    switch (st_) {
      case St::init: {
        if (depth_ > Vfs::kMaxSymlinkDepth) {
          err_ = Errno::eloop;
          st_ = St::done;
          return std::nullopt;
        }
        if (!is_absolute_path(path_)) {
          err_ = Errno::einval;
          st_ = St::done;
          return std::nullopt;
        }
        st_ = St::prefix_done;
        const auto n = Vfs::component_count(path_);
        if (n == 0) {
          err_ = Errno::einval;
          st_ = St::done;
          return std::nullopt;
        }
        if (metrics::Registry* m = vfs_.metrics()) {
          // One observation per resolution leg; symlink restarts show up
          // as extra legs, which is exactly the work the walk performs.
          m->observe("fs.path_walk_components",
                     static_cast<std::int64_t>(n));
          if (depth_ > 0) m->count("fs.symlink_restarts");
        }
        return Step::work(vfs_.costs().path_component *
                          static_cast<std::int64_t>(n));
      }
      case St::prefix_done: {
        const auto walk = vfs_.walk_prefix(path_);
        if (walk.err != Errno::ok) {
          err_ = walk.err;
          st_ = St::done;
          return std::nullopt;
        }
        parent_ = walk.parent;
        final_name_ = walk.final_name;
        Inode& parent_inode = vfs_.inode_mut(parent_);
        sim::Semaphore& sem = parent_inode.sem();
        if (policy_ == SemPolicy::hold) {
          st_ = St::locked;
          return Step::acquire(&sem);
        }
        // dcache semantics for lockless (RCU-style) lookups:
        //  * a directory being renamed-into forces the slow path (the
        //    rename seqlock would make the walk retry);
        //  * a positive entry can be read locklessly even while a writer
        //    holds the semaphore (the dentry stays valid until the
        //    writer's commit point);
        //  * a negative result is only trustworthy when no writer holds
        //    the semaphore — otherwise take the slow path and wait.
        const bool must_block =
            parent_inode.rename_in_progress() ||
            (sem.held() && walk.target == kNoIno);
        if (!must_block) {
          if (lookup_final()) {
            st_ = St::init;
            continue;
          }
          st_ = St::done;
          return std::nullopt;
        }
        slow_path_ = true;
        if (metrics::Registry* m = vfs_.metrics()) {
          m->count("fs.lockless_slow_paths");
        }
        st_ = St::locked;
        return Step::acquire(&sem);
      }
      case St::locked: {
        sim::Semaphore& sem = vfs_.inode_mut(parent_).sem();
        const bool restart = lookup_final();
        if (policy_ == SemPolicy::lockless_if_free) {
          st_ = restart ? St::release_then_restart : St::locked_tail;
          return Step::work(vfs_.costs().stat_locked_tail);
        }
        if (restart) {
          st_ = St::init;
          return Step::release(&sem);
        }
        held_ = &sem;  // caller releases
        st_ = St::done;
        return std::nullopt;
      }
      case St::locked_tail: {
        st_ = St::done;
        return Step::release(&vfs_.inode_mut(parent_).sem());
      }
      case St::release_then_restart: {
        st_ = St::init;
        return Step::release(&vfs_.inode_mut(parent_).sem());
      }
      case St::done:
        return std::nullopt;
    }
  }
}

/// Base with shared journaling plumbing.
class FsOp : public ServiceOp {
 public:
  FsOp(Vfs& vfs, std::string path, Errno* err_out)
      : vfs_(vfs), path_(std::move(path)), err_out_(err_out) {}

  void fill_record(trace::SyscallRecord& rec) const override {
    rec.path = path_;
  }

 protected:
  /// Checkpoint rebind: the Vfs reference and the program-owned errno
  /// slot both live in cloned state and remap through `m` (programs are
  /// cloned before their in-flight ops, so the slot range is known).
  FsOp(const FsOp& o, sim::CloneMap& m)
      : vfs_(*m.remap(&o.vfs_)), path_(o.path_),
        err_out_(m.remap(o.err_out_)) {}

  Step finish(Errno e) {
    if (err_out_ != nullptr) *err_out_ = e;
    return Step::done(e);
  }

  /// Shared digest prefix: op name (type discriminator) + path. Output
  /// slots (err_out_ and friends) are hashed as values by the program
  /// that owns them, never as pointers.
  void hash_base(tocttou::StateHasher& h) const {
    h.str(name());
    h.str(path_);
  }

  static void hash_walker(tocttou::StateHasher& h,
                          const std::optional<Walker>& w) {
    h.boolean(w.has_value());
    if (w) w->hash_state(h);
  }

  Vfs& vfs_;
  std::string path_;
  Errno* err_out_;
};

// ---------------------------------------------------------------------------
// stat / lstat / access
// ---------------------------------------------------------------------------

class StatOp final : public FsOp {
 public:
  StatOp(Vfs& vfs, std::string path, bool follow, StatBuf* out, Errno* err_out)
      : FsOp(vfs, std::move(path), err_out),
        follow_(follow),
        out_(out) {}

  std::string_view name() const override { return follow_ ? "stat" : "lstat"; }
  int libc_page() const override { return kPageStat; }

  Step advance(ServiceContext& ctx) override {
    switch (phase_) {
      case 0: {
        if (!walker_) {
          walker_.emplace(vfs_, path_,
                          Walker::SemPolicy::lockless_if_free,
                          follow_ ? Walker::Follow::yes : Walker::Follow::no);
        }
        if (auto s = walker_->advance(ctx)) return *s;
        phase_ = 1;
        return Step::work(vfs_.costs().stat_base);
      }
      default: {
        if (walker_->error() != Errno::ok) return finish(walker_->error());
        if (!walker_->target_exists()) return finish(Errno::enoent);
        ok_ = true;
        if (out_ != nullptr) *out_ = walker_->snapshot();
        return finish(Errno::ok);
      }
    }
  }

  void fill_record(trace::SyscallRecord& rec) const override {
    FsOp::fill_record(rec);
    if (ok_) {
      const auto& s = walker_->snapshot();
      rec.st_uid = s.uid;
      rec.st_gid = s.gid;
      rec.st_ino = s.ino;
    }
  }

  std::unique_ptr<ServiceOp> clone(sim::CloneMap& m) const override {
    return std::unique_ptr<ServiceOp>(new StatOp(*this, m));
  }

  void hash_state(tocttou::StateHasher& h) const override {
    hash_base(h);
    h.boolean(follow_);
    hash_walker(h, walker_);
    h.i64(phase_);
    h.boolean(ok_);
  }

 private:
  StatOp(const StatOp& o, sim::CloneMap& m)
      : FsOp(o, m), follow_(o.follow_), out_(m.remap(o.out_)),
        phase_(o.phase_), ok_(o.ok_) {
    if (o.walker_) walker_.emplace(*o.walker_, m);
  }

  bool follow_;
  StatBuf* out_;
  std::optional<Walker> walker_;
  int phase_ = 0;
  bool ok_ = false;
};

class AccessOp final : public FsOp {
 public:
  AccessOp(Vfs& vfs, std::string path, Errno* err_out)
      : FsOp(vfs, std::move(path), err_out) {}

  std::string_view name() const override { return "access"; }
  int libc_page() const override { return kPageStat; }

  Step advance(ServiceContext& ctx) override {
    switch (phase_) {
      case 0: {
        if (!walker_) {
          walker_.emplace(vfs_, path_, Walker::SemPolicy::lockless_if_free,
                          Walker::Follow::yes);
        }
        if (auto s = walker_->advance(ctx)) return *s;
        phase_ = 1;
        return Step::work(vfs_.costs().access_base);
      }
      default: {
        if (walker_->error() != Errno::ok) return finish(walker_->error());
        if (!walker_->target_exists()) return finish(Errno::enoent);
        const Inode& t = vfs_.inode(walker_->target());
        return finish(Vfs::may_read(t, creds_of(ctx)) ? Errno::ok
                                                      : Errno::eacces);
      }
    }
  }

  std::unique_ptr<ServiceOp> clone(sim::CloneMap& m) const override {
    return std::unique_ptr<ServiceOp>(new AccessOp(*this, m));
  }

  void hash_state(tocttou::StateHasher& h) const override {
    hash_base(h);
    hash_walker(h, walker_);
    h.i64(phase_);
  }

 private:
  AccessOp(const AccessOp& o, sim::CloneMap& m)
      : FsOp(o, m), phase_(o.phase_) {
    if (o.walker_) walker_.emplace(*o.walker_, m);
  }

  std::optional<Walker> walker_;
  int phase_ = 0;
};

// ---------------------------------------------------------------------------
// open / close / read / write
// ---------------------------------------------------------------------------

class OpenOp final : public FsOp {
 public:
  OpenOp(Vfs& vfs, std::string path, OpenFlags flags, Mode mode,
         OpenResult* out)
      : FsOp(vfs, std::move(path), nullptr),
        flags_(flags),
        mode_(mode),
        out_(out) {}

  std::string_view name() const override { return "open"; }
  int libc_page() const override { return kPageOpenClose; }

  Step advance(ServiceContext& ctx) override {
    switch (phase_) {
      case 0: {  // resolve, holding the directory semaphore
        if (!walker_) {
          walker_.emplace(vfs_, path_, Walker::SemPolicy::hold,
                          Walker::Follow::yes);
        }
        if (auto s = walker_->advance(ctx)) return *s;
        if (walker_->error() != Errno::ok) return done_err(walker_->error());
        sem_ = walker_->held_dir_sem();
        if (walker_->target_exists()) {
          const Inode& t = vfs_.inode(walker_->target());
          if (flags_.create && flags_.excl) return fail(Errno::eexist);
          if (t.is_dir() && flags_.write) return fail(Errno::eisdir);
          const auto creds = creds_of(ctx);
          const bool perm = flags_.write ? Vfs::may_write(t, creds)
                                         : Vfs::may_read(t, creds);
          if (!perm) return fail(Errno::eacces);
          ino_ = walker_->target();
          if (flags_.truncate && flags_.write) {
            vfs_.inode_mut(ino_).set_size_bytes(0);
          }
          phase_ = 2;
          return Step::release(sem_);
        }
        if (!flags_.create) return fail(Errno::enoent);
        if (!Vfs::may_write(vfs_.inode(walker_->parent()), creds_of(ctx))) {
          return fail(Errno::eacces);
        }
        phase_ = 1;
        return Step::work(vfs_.costs().create_extra);
      }
      case 1: {  // commit the newly created inode (still under the sem)
        Inode& n = vfs_.alloc_inode(FileType::regular, ctx.proc.uid(),
                                    ctx.proc.gid(), mode_);
        ino_ = n.ino();
        vfs_.link_entry(walker_->parent(), walker_->final_name(), ino_);
        phase_ = 2;
        return Step::release(sem_);
      }
      case 2: {  // fd setup after releasing the namespace lock
        phase_ = 3;
        return Step::work(vfs_.costs().open_base);
      }
      case 3: {
        const int fd = vfs_.fd_alloc(ctx.proc.pid(), ino_, flags_);
        if (out_ != nullptr) {
          out_->fd = fd;
          out_->err = Errno::ok;
        }
        return Step::done(Errno::ok);
      }
      default: {  // phase 9: error path, semaphore already released
        return done_err(pending_err_);
      }
    }
  }

  void fill_record(trace::SyscallRecord& rec) const override {
    FsOp::fill_record(rec);
    if (ino_ != kNoIno) rec.applied_ino = ino_;
  }

  std::unique_ptr<ServiceOp> clone(sim::CloneMap& m) const override {
    return std::unique_ptr<ServiceOp>(new OpenOp(*this, m));
  }

  void hash_state(tocttou::StateHasher& h) const override {
    hash_base(h);
    h.boolean(flags_.write);
    h.boolean(flags_.create);
    h.boolean(flags_.truncate);
    h.boolean(flags_.excl);
    h.u64(mode_);
    hash_walker(h, walker_);
    hash_sem_ptr(h, sem_);
    h.u64(ino_);
    h.i64(phase_);
    h.u32(static_cast<std::uint32_t>(pending_err_));
  }

 private:
  OpenOp(const OpenOp& o, sim::CloneMap& m)
      : FsOp(o, m), flags_(o.flags_), mode_(o.mode_), out_(m.remap(o.out_)),
        sem_(m.remap(o.sem_)), ino_(o.ino_), phase_(o.phase_),
        pending_err_(o.pending_err_) {
    if (o.walker_) walker_.emplace(*o.walker_, m);
  }

  Step done_err(Errno e) {
    if (out_ != nullptr) {
      out_->fd = -1;
      out_->err = e;
    }
    return Step::done(e);
  }

  Step fail(Errno e) {
    pending_err_ = e;
    phase_ = 9;
    return Step::release(sem_);
  }

  OpenFlags flags_;
  Mode mode_;
  OpenResult* out_;
  std::optional<Walker> walker_;
  sim::Semaphore* sem_ = nullptr;
  Ino ino_ = kNoIno;
  int phase_ = 0;
  Errno pending_err_ = Errno::ok;
};

class CloseOp final : public ServiceOp {
 public:
  CloseOp(Vfs& vfs, int fd, Errno* err_out)
      : vfs_(vfs), fd_(fd), err_out_(err_out) {}

  std::string_view name() const override { return "close"; }
  int libc_page() const override { return kPageOpenClose; }

  Step advance(ServiceContext& ctx) override {
    if (phase_ == 0) {
      phase_ = 1;
      return Step::work(vfs_.costs().close_base);
    }
    const Errno e = vfs_.fd_close(ctx.proc.pid(), fd_);
    if (err_out_ != nullptr) *err_out_ = e;
    return Step::done(e);
  }

  std::unique_ptr<ServiceOp> clone(sim::CloneMap& m) const override {
    return std::unique_ptr<ServiceOp>(new CloseOp(*this, m));
  }

  void hash_state(tocttou::StateHasher& h) const override {
    h.str(name());
    h.i64(fd_);
    h.i64(phase_);
  }

 private:
  CloseOp(const CloseOp& o, sim::CloneMap& m)
      : vfs_(*m.remap(&o.vfs_)), fd_(o.fd_),
        err_out_(m.remap(o.err_out_)), phase_(o.phase_) {}

  Vfs& vfs_;
  int fd_;
  Errno* err_out_;
  int phase_ = 0;
};

class WriteOp final : public ServiceOp {
 public:
  WriteOp(Vfs& vfs, int fd, std::uint64_t bytes, Errno* err_out)
      : vfs_(vfs), fd_(fd), bytes_(bytes), err_out_(err_out) {}

  std::string_view name() const override { return "write"; }
  int libc_page() const override { return kPageReadWrite; }

  Step advance(ServiceContext& ctx) override {
    switch (phase_) {
      case 0: {
        const auto f = vfs_.fd_get(ctx.proc.pid(), fd_);
        if (!f.ok() || !f.value().flags.write) return finish(Errno::ebadf);
        ino_ = f.value().ino;
        phase_ = 1;
        return Step::acquire(&vfs_.inode_mut(ino_).sem());
      }
      case 1: {
        phase_ = 2;
        const double kb = static_cast<double>(bytes_) / 1024.0;
        return Step::work(vfs_.costs().write_base +
                          vfs_.costs().write_per_kb * kb);
      }
      case 2: {
        vfs_.inode_mut(ino_).add_size_bytes(bytes_);
        phase_ = 3;
        return Step::release(&vfs_.inode_mut(ino_).sem());
      }
      case 3: {
        phase_ = 4;
        // Page-cache writeback throttling: occasionally the writer is put
        // to sleep on the device — a uniprocessor suspension source.
        if (ctx.rng.bernoulli(vfs_.costs().writeback_stall_prob)) {
          return Step::block_io(ctx.rng.normal_duration(
              vfs_.costs().writeback_stall_mean,
              vfs_.costs().writeback_stall_stdev, Duration::micros(200)));
        }
        return finish(Errno::ok);
      }
      default:
        return finish(Errno::ok);
    }
  }

  void fill_record(trace::SyscallRecord& rec) const override {
    if (ino_ != kNoIno) rec.applied_ino = ino_;
  }

  std::unique_ptr<ServiceOp> clone(sim::CloneMap& m) const override {
    return std::unique_ptr<ServiceOp>(new WriteOp(*this, m));
  }

  void hash_state(tocttou::StateHasher& h) const override {
    h.str(name());
    h.i64(fd_);
    h.u64(bytes_);
    h.u64(ino_);
    h.i64(phase_);
  }

 private:
  WriteOp(const WriteOp& o, sim::CloneMap& m)
      : vfs_(*m.remap(&o.vfs_)), fd_(o.fd_), bytes_(o.bytes_),
        err_out_(m.remap(o.err_out_)), ino_(o.ino_), phase_(o.phase_) {}

  Step finish(Errno e) {
    if (err_out_ != nullptr) *err_out_ = e;
    return Step::done(e);
  }

  Vfs& vfs_;
  int fd_;
  std::uint64_t bytes_;
  Errno* err_out_;
  Ino ino_ = kNoIno;
  int phase_ = 0;
};

class ReadOp final : public ServiceOp {
 public:
  ReadOp(Vfs& vfs, int fd, std::uint64_t bytes, Errno* err_out)
      : vfs_(vfs), fd_(fd), bytes_(bytes), err_out_(err_out) {}

  std::string_view name() const override { return "read"; }
  int libc_page() const override { return kPageReadWrite; }

  Step advance(ServiceContext& ctx) override {
    switch (phase_) {
      case 0: {
        const auto f = vfs_.fd_get(ctx.proc.pid(), fd_);
        if (!f.ok()) return finish(Errno::ebadf);
        phase_ = 1;
        const double kb = static_cast<double>(bytes_) / 1024.0;
        return Step::work(vfs_.costs().read_base +
                          vfs_.costs().read_per_kb * kb);
      }
      default:
        return finish(Errno::ok);
    }
  }

  std::unique_ptr<ServiceOp> clone(sim::CloneMap& m) const override {
    return std::unique_ptr<ServiceOp>(new ReadOp(*this, m));
  }

  void hash_state(tocttou::StateHasher& h) const override {
    h.str(name());
    h.i64(fd_);
    h.u64(bytes_);
    h.i64(phase_);
  }

 private:
  ReadOp(const ReadOp& o, sim::CloneMap& m)
      : vfs_(*m.remap(&o.vfs_)), fd_(o.fd_), bytes_(o.bytes_),
        err_out_(m.remap(o.err_out_)), phase_(o.phase_) {}

  Step finish(Errno e) {
    if (err_out_ != nullptr) *err_out_ = e;
    return Step::done(e);
  }

  Vfs& vfs_;
  int fd_;
  std::uint64_t bytes_;
  Errno* err_out_;
  int phase_ = 0;
};

// ---------------------------------------------------------------------------
// rename / unlink / symlink / mkdir / readlink
// ---------------------------------------------------------------------------

class RenameOp final : public FsOp {
 public:
  RenameOp(Vfs& vfs, std::string oldpath, std::string newpath, Errno* err_out)
      : FsOp(vfs, std::move(oldpath), err_out),
        newpath_(std::move(newpath)) {}

  std::string_view name() const override { return "rename"; }
  int libc_page() const override { return kPageRename; }

  Step advance(ServiceContext& ctx) override {
    switch (phase_) {
      case 0: {
        if (!walker_) {
          walker_.emplace(vfs_, path_, Walker::SemPolicy::hold,
                          Walker::Follow::no);
        }
        if (auto s = walker_->advance(ctx)) return *s;
        if (walker_->error() != Errno::ok) return finish(walker_->error());
        sem_ = walker_->held_dir_sem();
        if (!walker_->target_exists()) return fail(Errno::enoent);
        const auto nw = vfs_.walk_prefix(newpath_);
        if (nw.err != Errno::ok) return fail(nw.err);
        if (nw.parent != walker_->parent()) return fail(Errno::exdev);
        new_final_ = nw.final_name;
        if (new_final_ == walker_->final_name()) return fail(Errno::einval);
        if (!Vfs::may_write(vfs_.inode(walker_->parent()), creds_of(ctx))) {
          return fail(Errno::eacces);
        }
        // Models the rename seqlock: lockless lookups in this directory
        // take the slow path until the commit.
        vfs_.inode_mut(walker_->parent()).set_rename_in_progress(true);
        phase_ = 1;
        return Step::work(vfs_.costs().rename_work);
      }
      case 1: {  // commit point, still under the directory semaphore
        const Ino dir = walker_->parent();
        const Ino tgt = walker_->target();
        vfs_.unlink_entry(dir, walker_->final_name());
        if (vfs_.lookup_in(dir, new_final_) != kNoIno) {
          vfs_.unlink_entry(dir, new_final_);
        }
        vfs_.link_entry(dir, new_final_, tgt);
        applied_ = tgt;
        vfs_.inode_mut(dir).set_rename_in_progress(false);
        phase_ = 2;
        return Step::release(sem_);
      }
      case 2: {
        phase_ = 3;
        return Step::work(vfs_.costs().rename_tail);
      }
      default:
        if (pending_err_ != Errno::ok) return finish(pending_err_);
        return finish(Errno::ok);
    }
  }

  void fill_record(trace::SyscallRecord& rec) const override {
    FsOp::fill_record(rec);
    rec.path2 = newpath_;
    if (applied_ != kNoIno) rec.applied_ino = applied_;
  }

  std::unique_ptr<ServiceOp> clone(sim::CloneMap& m) const override {
    return std::unique_ptr<ServiceOp>(new RenameOp(*this, m));
  }

  void hash_state(tocttou::StateHasher& h) const override {
    hash_base(h);
    h.str(newpath_);
    h.str(new_final_);
    hash_walker(h, walker_);
    hash_sem_ptr(h, sem_);
    h.u64(applied_);
    h.u32(static_cast<std::uint32_t>(pending_err_));
    h.i64(phase_);
  }

 private:
  RenameOp(const RenameOp& o, sim::CloneMap& m)
      : FsOp(o, m), newpath_(o.newpath_), new_final_(o.new_final_),
        sem_(m.remap(o.sem_)), applied_(o.applied_),
        pending_err_(o.pending_err_), phase_(o.phase_) {
    if (o.walker_) walker_.emplace(*o.walker_, m);
  }

  Step fail(Errno e) {
    pending_err_ = e;
    phase_ = 3;
    return Step::release(sem_);
  }

  std::string newpath_;
  std::string new_final_;
  std::optional<Walker> walker_;
  sim::Semaphore* sem_ = nullptr;
  Ino applied_ = kNoIno;
  Errno pending_err_ = Errno::ok;
  int phase_ = 0;
};

class UnlinkOp final : public FsOp {
 public:
  UnlinkOp(Vfs& vfs, std::string path, Errno* err_out)
      : FsOp(vfs, std::move(path), err_out) {}

  std::string_view name() const override { return "unlink"; }
  int libc_page() const override { return kPageUnlinkSymlink; }

  Step advance(ServiceContext& ctx) override {
    switch (phase_) {
      case 0: {
        if (!walker_) {
          walker_.emplace(vfs_, path_, Walker::SemPolicy::hold,
                          Walker::Follow::no);
        }
        if (auto s = walker_->advance(ctx)) return *s;
        if (walker_->error() != Errno::ok) return finish(walker_->error());
        dir_sem_ = walker_->held_dir_sem();
        if (!walker_->target_exists()) return fail(Errno::enoent);
        ino_ = walker_->target();
        if (vfs_.inode(ino_).is_dir()) return fail(Errno::eisdir);
        if (!Vfs::may_write(vfs_.inode(walker_->parent()), creds_of(ctx))) {
          return fail(Errno::eacces);
        }
        phase_ = 1;
        // Lock order everywhere: directory sem, then target inode sem.
        return Step::acquire(&vfs_.inode_mut(ino_).sem());
      }
      case 1: {
        phase_ = 2;
        return Step::work(vfs_.costs().unlink_detach);
      }
      case 2: {  // detach commit: the name disappears from the directory
        vfs_.unlink_entry(walker_->parent(), walker_->final_name());
        phase_ = 3;
        return Step::release(dir_sem_);
      }
      case 3: {  // physical truncate happens after the dir sem is free —
                 // this is what lets a parallel symlink overlap (Sec. 7).
        phase_ = 4;
        const Inode& n = vfs_.inode(ino_);
        // Orphans with open fds keep their data (vi keeps writing through
        // its fd after the attacker's unlink); truncate only when fully
        // unreferenced.
        truncating_ =
            n.nlink() == 0 && n.open_refs() == 0 && n.size_bytes() > 0;
        if (truncating_) {
          const double kb = static_cast<double>(n.size_bytes()) / 1024.0;
          return Step::work(vfs_.costs().truncate_per_kb * kb);
        }
        return advance(ctx);
      }
      case 4: {
        if (truncating_) vfs_.inode_mut(ino_).set_size_bytes(0);
        phase_ = 5;
        return Step::release(&vfs_.inode_mut(ino_).sem());
      }
      default:
        if (pending_err_ != Errno::ok) return finish(pending_err_);
        return finish(Errno::ok);
    }
  }

  void fill_record(trace::SyscallRecord& rec) const override {
    FsOp::fill_record(rec);
    if (ino_ != kNoIno) rec.applied_ino = ino_;
  }

  std::unique_ptr<ServiceOp> clone(sim::CloneMap& m) const override {
    return std::unique_ptr<ServiceOp>(new UnlinkOp(*this, m));
  }

  void hash_state(tocttou::StateHasher& h) const override {
    hash_base(h);
    hash_walker(h, walker_);
    hash_sem_ptr(h, dir_sem_);
    h.u64(ino_);
    h.u32(static_cast<std::uint32_t>(pending_err_));
    h.boolean(truncating_);
    h.i64(phase_);
  }

 private:
  UnlinkOp(const UnlinkOp& o, sim::CloneMap& m)
      : FsOp(o, m), dir_sem_(m.remap(o.dir_sem_)), ino_(o.ino_),
        pending_err_(o.pending_err_), truncating_(o.truncating_),
        phase_(o.phase_) {
    if (o.walker_) walker_.emplace(*o.walker_, m);
  }

  Step fail(Errno e) {
    pending_err_ = e;
    phase_ = 5;
    return Step::release(dir_sem_);
  }

  std::optional<Walker> walker_;
  sim::Semaphore* dir_sem_ = nullptr;
  Ino ino_ = kNoIno;
  Errno pending_err_ = Errno::ok;
  bool truncating_ = false;
  int phase_ = 0;
};

class SymlinkOp final : public FsOp {
 public:
  SymlinkOp(Vfs& vfs, std::string target, std::string linkpath,
            Errno* err_out)
      : FsOp(vfs, std::move(linkpath), err_out), target_(std::move(target)) {}

  std::string_view name() const override { return "symlink"; }
  int libc_page() const override { return kPageUnlinkSymlink; }

  Step advance(ServiceContext& ctx) override {
    switch (phase_) {
      case 0: {
        if (!walker_) {
          walker_.emplace(vfs_, path_, Walker::SemPolicy::hold,
                          Walker::Follow::no);
        }
        if (auto s = walker_->advance(ctx)) return *s;
        if (walker_->error() != Errno::ok) return finish(walker_->error());
        sem_ = walker_->held_dir_sem();
        if (walker_->target_exists()) return fail(Errno::eexist);
        if (!Vfs::may_write(vfs_.inode(walker_->parent()), creds_of(ctx))) {
          return fail(Errno::eacces);
        }
        phase_ = 1;
        return Step::work(vfs_.costs().symlink_base);
      }
      case 1: {  // commit
        Inode& n = vfs_.alloc_inode(FileType::symlink, ctx.proc.uid(),
                                    ctx.proc.gid(), 0777);
        n.set_symlink_target(target_);
        vfs_.link_entry(walker_->parent(), walker_->final_name(), n.ino());
        applied_ = n.ino();
        phase_ = 2;
        return Step::release(sem_);
      }
      default:
        if (pending_err_ != Errno::ok) return finish(pending_err_);
        return finish(Errno::ok);
    }
  }

  void fill_record(trace::SyscallRecord& rec) const override {
    FsOp::fill_record(rec);
    rec.path2 = target_;
    if (applied_ != kNoIno) rec.applied_ino = applied_;
  }

  std::unique_ptr<ServiceOp> clone(sim::CloneMap& m) const override {
    return std::unique_ptr<ServiceOp>(new SymlinkOp(*this, m));
  }

  void hash_state(tocttou::StateHasher& h) const override {
    hash_base(h);
    h.str(target_);
    hash_walker(h, walker_);
    hash_sem_ptr(h, sem_);
    h.u64(applied_);
    h.u32(static_cast<std::uint32_t>(pending_err_));
    h.i64(phase_);
  }

 private:
  SymlinkOp(const SymlinkOp& o, sim::CloneMap& m)
      : FsOp(o, m), target_(o.target_), sem_(m.remap(o.sem_)),
        applied_(o.applied_), pending_err_(o.pending_err_),
        phase_(o.phase_) {
    if (o.walker_) walker_.emplace(*o.walker_, m);
  }

  Step fail(Errno e) {
    pending_err_ = e;
    phase_ = 2;
    return Step::release(sem_);
  }

  std::string target_;
  std::optional<Walker> walker_;
  sim::Semaphore* sem_ = nullptr;
  Ino applied_ = kNoIno;
  Errno pending_err_ = Errno::ok;
  int phase_ = 0;
};

class MkdirOp final : public FsOp {
 public:
  MkdirOp(Vfs& vfs, std::string path, Mode mode, Errno* err_out)
      : FsOp(vfs, std::move(path), err_out), mode_(mode) {}

  std::string_view name() const override { return "mkdir"; }
  int libc_page() const override { return kPageMisc; }

  Step advance(ServiceContext& ctx) override {
    switch (phase_) {
      case 0: {
        if (!walker_) {
          walker_.emplace(vfs_, path_, Walker::SemPolicy::hold,
                          Walker::Follow::no);
        }
        if (auto s = walker_->advance(ctx)) return *s;
        if (walker_->error() != Errno::ok) return finish(walker_->error());
        sem_ = walker_->held_dir_sem();
        if (walker_->target_exists()) return fail(Errno::eexist);
        if (!Vfs::may_write(vfs_.inode(walker_->parent()), creds_of(ctx))) {
          return fail(Errno::eacces);
        }
        phase_ = 1;
        return Step::work(vfs_.costs().mkdir_base);
      }
      case 1: {
        Inode& n = vfs_.alloc_inode(FileType::directory, ctx.proc.uid(),
                                    ctx.proc.gid(), mode_);
        vfs_.link_entry(walker_->parent(), walker_->final_name(), n.ino());
        phase_ = 2;
        return Step::release(sem_);
      }
      default:
        if (pending_err_ != Errno::ok) return finish(pending_err_);
        return finish(Errno::ok);
    }
  }

  std::unique_ptr<ServiceOp> clone(sim::CloneMap& m) const override {
    return std::unique_ptr<ServiceOp>(new MkdirOp(*this, m));
  }

  void hash_state(tocttou::StateHasher& h) const override {
    hash_base(h);
    h.u64(mode_);
    hash_walker(h, walker_);
    hash_sem_ptr(h, sem_);
    h.u32(static_cast<std::uint32_t>(pending_err_));
    h.i64(phase_);
  }

 private:
  MkdirOp(const MkdirOp& o, sim::CloneMap& m)
      : FsOp(o, m), mode_(o.mode_), sem_(m.remap(o.sem_)),
        pending_err_(o.pending_err_), phase_(o.phase_) {
    if (o.walker_) walker_.emplace(*o.walker_, m);
  }

  Step fail(Errno e) {
    pending_err_ = e;
    phase_ = 2;
    return Step::release(sem_);
  }

  Mode mode_;
  std::optional<Walker> walker_;
  sim::Semaphore* sem_ = nullptr;
  Errno pending_err_ = Errno::ok;
  int phase_ = 0;
};

class ReadlinkOp final : public FsOp {
 public:
  ReadlinkOp(Vfs& vfs, std::string path, std::string* out, Errno* err_out)
      : FsOp(vfs, std::move(path), err_out), out_(out) {}

  std::string_view name() const override { return "readlink"; }
  int libc_page() const override { return kPageMisc; }

  Step advance(ServiceContext& ctx) override {
    switch (phase_) {
      case 0: {
        if (!walker_) {
          walker_.emplace(vfs_, path_, Walker::SemPolicy::lockless_if_free,
                          Walker::Follow::no);
        }
        if (auto s = walker_->advance(ctx)) return *s;
        phase_ = 1;
        return Step::work(vfs_.costs().readlink_base);
      }
      default: {
        if (walker_->error() != Errno::ok) return finish(walker_->error());
        if (!walker_->target_exists()) return finish(Errno::enoent);
        const Inode& t = vfs_.inode(walker_->target());
        if (!t.is_symlink()) return finish(Errno::einval);
        if (out_ != nullptr) *out_ = t.symlink_target();
        return finish(Errno::ok);
      }
    }
  }

  std::unique_ptr<ServiceOp> clone(sim::CloneMap& m) const override {
    return std::unique_ptr<ServiceOp>(new ReadlinkOp(*this, m));
  }

  void hash_state(tocttou::StateHasher& h) const override {
    hash_base(h);
    hash_walker(h, walker_);
    h.i64(phase_);
  }

 private:
  ReadlinkOp(const ReadlinkOp& o, sim::CloneMap& m)
      : FsOp(o, m), out_(m.remap(o.out_)), phase_(o.phase_) {
    if (o.walker_) walker_.emplace(*o.walker_, m);
  }

  std::string* out_;
  std::optional<Walker> walker_;
  int phase_ = 0;
};

class LinkOp final : public FsOp {
 public:
  LinkOp(Vfs& vfs, std::string oldpath, std::string newpath, Errno* err_out)
      : FsOp(vfs, std::move(oldpath), err_out), newpath_(std::move(newpath)) {}

  std::string_view name() const override { return "link"; }
  int libc_page() const override { return kPageUnlinkSymlink; }

  Step advance(ServiceContext& ctx) override {
    switch (phase_) {
      case 0: {  // resolve the existing file (no symlink follow, as link(2))
        if (!walker_) {
          walker_.emplace(vfs_, path_, Walker::SemPolicy::lockless_if_free,
                          Walker::Follow::no);
        }
        if (auto s = walker_->advance(ctx)) return *s;
        if (walker_->error() != Errno::ok) return finish(walker_->error());
        if (!walker_->target_exists()) return finish(Errno::enoent);
        if (vfs_.inode(walker_->target()).is_dir()) {
          return finish(Errno::eisdir);
        }
        target_ino_ = walker_->target();
        phase_ = 1;
        new_walker_.emplace(vfs_, newpath_, Walker::SemPolicy::hold,
                            Walker::Follow::no);
        return advance(ctx);
      }
      case 1: {  // take the destination directory's semaphore
        if (auto s = new_walker_->advance(ctx)) return *s;
        if (new_walker_->error() != Errno::ok) {
          return finish(new_walker_->error());
        }
        sem_ = new_walker_->held_dir_sem();
        if (new_walker_->target_exists()) return fail(Errno::eexist);
        if (!Vfs::may_write(vfs_.inode(new_walker_->parent()),
                            creds_of(ctx))) {
          return fail(Errno::eacces);
        }
        phase_ = 2;
        return Step::work(vfs_.costs().link_base);
      }
      case 2: {  // commit
        vfs_.link_entry(new_walker_->parent(), new_walker_->final_name(),
                        target_ino_);
        phase_ = 3;
        return Step::release(sem_);
      }
      default:
        if (pending_err_ != Errno::ok) return finish(pending_err_);
        return finish(Errno::ok);
    }
  }

  void fill_record(trace::SyscallRecord& rec) const override {
    FsOp::fill_record(rec);
    rec.path2 = newpath_;
    if (target_ino_ != kNoIno) rec.applied_ino = target_ino_;
  }

  std::unique_ptr<ServiceOp> clone(sim::CloneMap& m) const override {
    return std::unique_ptr<ServiceOp>(new LinkOp(*this, m));
  }

  void hash_state(tocttou::StateHasher& h) const override {
    hash_base(h);
    h.str(newpath_);
    hash_walker(h, walker_);
    hash_walker(h, new_walker_);
    hash_sem_ptr(h, sem_);
    h.u64(target_ino_);
    h.u32(static_cast<std::uint32_t>(pending_err_));
    h.i64(phase_);
  }

 private:
  LinkOp(const LinkOp& o, sim::CloneMap& m)
      : FsOp(o, m), newpath_(o.newpath_), sem_(m.remap(o.sem_)),
        target_ino_(o.target_ino_), pending_err_(o.pending_err_),
        phase_(o.phase_) {
    if (o.walker_) walker_.emplace(*o.walker_, m);
    if (o.new_walker_) new_walker_.emplace(*o.new_walker_, m);
  }

  Step fail(Errno e) {
    pending_err_ = e;
    phase_ = 3;
    return Step::release(sem_);
  }

  std::string newpath_;
  std::optional<Walker> walker_;
  std::optional<Walker> new_walker_;
  sim::Semaphore* sem_ = nullptr;
  Ino target_ino_ = kNoIno;
  Errno pending_err_ = Errno::ok;
  int phase_ = 0;
};

// ---------------------------------------------------------------------------
// fd-based operations (no path resolution: immune to name redirection)
// ---------------------------------------------------------------------------

class FstatOp final : public ServiceOp {
 public:
  FstatOp(Vfs& vfs, int fd, StatBuf* out, Errno* err_out)
      : vfs_(vfs), fd_(fd), out_(out), err_out_(err_out) {}

  std::string_view name() const override { return "fstat"; }
  int libc_page() const override { return kPageStat; }

  Step advance(ServiceContext& ctx) override {
    if (phase_ == 0) {
      phase_ = 1;
      return Step::work(vfs_.costs().stat_base);
    }
    const auto f = vfs_.fd_get(ctx.proc.pid(), fd_);
    if (!f.ok()) return finish(Errno::ebadf);
    ino_ = f.value().ino;
    if (out_ != nullptr) *out_ = vfs_.inode(ino_).to_stat();
    return finish(Errno::ok);
  }

  void fill_record(trace::SyscallRecord& rec) const override {
    if (ino_ != kNoIno) rec.applied_ino = ino_;
  }

  std::unique_ptr<ServiceOp> clone(sim::CloneMap& m) const override {
    return std::unique_ptr<ServiceOp>(new FstatOp(*this, m));
  }

  void hash_state(tocttou::StateHasher& h) const override {
    h.str(name());
    h.i64(fd_);
    h.u64(ino_);
    h.i64(phase_);
  }

 private:
  FstatOp(const FstatOp& o, sim::CloneMap& m)
      : vfs_(*m.remap(&o.vfs_)), fd_(o.fd_), out_(m.remap(o.out_)),
        err_out_(m.remap(o.err_out_)), ino_(o.ino_), phase_(o.phase_) {}

  Step finish(Errno e) {
    if (err_out_ != nullptr) *err_out_ = e;
    return Step::done(e);
  }

  Vfs& vfs_;
  int fd_;
  StatBuf* out_;
  Errno* err_out_;
  Ino ino_ = kNoIno;
  int phase_ = 0;
};

/// fchmod/fchown: acquire the open inode's semaphore, apply, release.
/// The inode was fixed at open() time — the attacker's rename/symlink
/// games after that are irrelevant.
class FSetAttrOp : public ServiceOp {
 public:
  FSetAttrOp(Vfs& vfs, int fd, Errno* err_out)
      : vfs_(vfs), fd_(fd), err_out_(err_out) {}

  int libc_page() const override { return kPageChmodChown; }

  Step advance(ServiceContext& ctx) override {
    switch (phase_) {
      case 0: {
        const auto f = vfs_.fd_get(ctx.proc.pid(), fd_);
        if (!f.ok()) return finish(Errno::ebadf);
        ino_ = f.value().ino;
        if (!permitted(vfs_.inode(ino_), creds_of(ctx))) {
          return finish(Errno::eperm);
        }
        phase_ = 1;
        return Step::acquire(&vfs_.inode_mut(ino_).sem());
      }
      case 1: {
        phase_ = 2;
        return Step::work(work_cost());
      }
      case 2: {
        apply(vfs_.inode_mut(ino_));
        phase_ = 3;
        return Step::release(&vfs_.inode_mut(ino_).sem());
      }
      default:
        return finish(Errno::ok);
    }
  }

  void fill_record(trace::SyscallRecord& rec) const override {
    if (ino_ != kNoIno) rec.applied_ino = ino_;
  }

 protected:
  FSetAttrOp(const FSetAttrOp& o, sim::CloneMap& m)
      : vfs_(*m.remap(&o.vfs_)), fd_(o.fd_),
        err_out_(m.remap(o.err_out_)), ino_(o.ino_), phase_(o.phase_) {}

  void hash_fsetattr(tocttou::StateHasher& h) const {
    h.str(name());
    h.i64(fd_);
    h.u64(ino_);
    h.i64(phase_);
  }

  virtual bool permitted(const Inode& target, const Creds& c) const = 0;
  virtual Duration work_cost() const = 0;
  virtual void apply(Inode& target) = 0;

  Vfs& vfs_;

 private:
  Step finish(Errno e) {
    if (err_out_ != nullptr) *err_out_ = e;
    return Step::done(e);
  }

  int fd_;
  Errno* err_out_;
  Ino ino_ = kNoIno;
  int phase_ = 0;
};

class FchmodOp final : public FSetAttrOp {
 public:
  FchmodOp(Vfs& vfs, int fd, Mode mode, Errno* err_out)
      : FSetAttrOp(vfs, fd, err_out), mode_(mode) {}

  std::string_view name() const override { return "fchmod"; }

  std::unique_ptr<ServiceOp> clone(sim::CloneMap& m) const override {
    return std::unique_ptr<ServiceOp>(new FchmodOp(*this, m));
  }

  void hash_state(tocttou::StateHasher& h) const override {
    hash_fsetattr(h);
    h.u64(mode_);
  }

 protected:
  bool permitted(const Inode& t, const Creds& c) const override {
    return c.is_root() || t.uid() == c.uid;
  }
  Duration work_cost() const override { return vfs_.costs().chmod_base; }
  void apply(Inode& t) override { t.set_mode(mode_); }

 private:
  FchmodOp(const FchmodOp& o, sim::CloneMap& m)
      : FSetAttrOp(o, m), mode_(o.mode_) {}

  Mode mode_;
};

class FchownOp final : public FSetAttrOp {
 public:
  FchownOp(Vfs& vfs, int fd, sim::Uid uid, sim::Gid gid, Errno* err_out)
      : FSetAttrOp(vfs, fd, err_out), uid_(uid), gid_(gid) {}

  std::string_view name() const override { return "fchown"; }

  std::unique_ptr<ServiceOp> clone(sim::CloneMap& m) const override {
    return std::unique_ptr<ServiceOp>(new FchownOp(*this, m));
  }

  void hash_state(tocttou::StateHasher& h) const override {
    hash_fsetattr(h);
    h.u64(uid_);
    h.u64(gid_);
  }

 protected:
  bool permitted(const Inode& t, const Creds& c) const override {
    (void)t;
    return c.is_root();
  }
  Duration work_cost() const override { return vfs_.costs().chown_base; }
  void apply(Inode& t) override { t.set_owner(uid_, gid_); }

 private:
  FchownOp(const FchownOp& o, sim::CloneMap& m)
      : FSetAttrOp(o, m), uid_(o.uid_), gid_(o.gid_) {}

  sim::Uid uid_;
  sim::Gid gid_;
};

// ---------------------------------------------------------------------------
// chmod / chown
// ---------------------------------------------------------------------------

/// Shared by chmod and chown: resolve the path (following symlinks — the
/// fatal behaviour the attacks exploit; lockless dcache walk like stat),
/// then apply under the TARGET INODE's semaphore. This is the semaphore
/// the paper's cascade runs through: an unlink holding the inode
/// semaphore through detach+truncate delays the victim's chmod, which in
/// turn delays the chown past the attacker's symlink (Section 6.1). Note
/// POSIX semantics: the operation applies to the inode resolved at
/// lookup time even if the name is unlinked while waiting.
class SetAttrOp : public FsOp {
 public:
  SetAttrOp(Vfs& vfs, std::string path, Errno* err_out)
      : FsOp(vfs, std::move(path), err_out) {}

  int libc_page() const override { return kPageChmodChown; }

  Step advance(ServiceContext& ctx) override {
    switch (phase_) {
      case 0: {
        if (!walker_) {
          walker_.emplace(vfs_, path_, Walker::SemPolicy::lockless_if_free,
                          Walker::Follow::yes);
        }
        if (auto s = walker_->advance(ctx)) return *s;
        if (walker_->error() != Errno::ok) return finish(walker_->error());
        if (!walker_->target_exists()) return finish(Errno::enoent);
        ino_ = walker_->target();
        if (!permitted(vfs_.inode(ino_), creds_of(ctx))) {
          return finish(Errno::eperm);
        }
        phase_ = 1;
        return Step::acquire(&vfs_.inode_mut(ino_).sem());
      }
      case 1: {
        phase_ = 2;
        return Step::work(work_cost());
      }
      case 2: {  // commit
        apply(vfs_.inode_mut(ino_));
        phase_ = 3;
        return Step::release(&vfs_.inode_mut(ino_).sem());
      }
      default:
        return finish(Errno::ok);
    }
  }

  void fill_record(trace::SyscallRecord& rec) const override {
    FsOp::fill_record(rec);
    if (ino_ != kNoIno) rec.applied_ino = ino_;
  }

 protected:
  SetAttrOp(const SetAttrOp& o, sim::CloneMap& m)
      : FsOp(o, m), ino_(o.ino_), phase_(o.phase_) {
    if (o.walker_) walker_.emplace(*o.walker_, m);
  }

  void hash_setattr(tocttou::StateHasher& h) const {
    hash_base(h);
    hash_walker(h, walker_);
    h.u64(ino_);
    h.i64(phase_);
  }

  virtual bool permitted(const Inode& target, const Creds& c) const = 0;
  virtual Duration work_cost() const = 0;
  virtual void apply(Inode& target) = 0;

 private:
  std::optional<Walker> walker_;
  Ino ino_ = kNoIno;
  int phase_ = 0;
};

class ChmodOp final : public SetAttrOp {
 public:
  ChmodOp(Vfs& vfs, std::string path, Mode mode, Errno* err_out)
      : SetAttrOp(vfs, std::move(path), err_out), mode_(mode) {}

  std::string_view name() const override { return "chmod"; }

  std::unique_ptr<ServiceOp> clone(sim::CloneMap& m) const override {
    return std::unique_ptr<ServiceOp>(new ChmodOp(*this, m));
  }

  void hash_state(tocttou::StateHasher& h) const override {
    hash_setattr(h);
    h.u64(mode_);
  }

 protected:
  bool permitted(const Inode& t, const Creds& c) const override {
    return c.is_root() || t.uid() == c.uid;
  }
  Duration work_cost() const override { return vfs_.costs().chmod_base; }
  void apply(Inode& t) override { t.set_mode(mode_); }

 private:
  ChmodOp(const ChmodOp& o, sim::CloneMap& m)
      : SetAttrOp(o, m), mode_(o.mode_) {}

  Mode mode_;
};

class ChownOp final : public SetAttrOp {
 public:
  ChownOp(Vfs& vfs, std::string path, sim::Uid uid, sim::Gid gid,
          Errno* err_out)
      : SetAttrOp(vfs, std::move(path), err_out), uid_(uid), gid_(gid) {}

  std::string_view name() const override { return "chown"; }

  std::unique_ptr<ServiceOp> clone(sim::CloneMap& m) const override {
    return std::unique_ptr<ServiceOp>(new ChownOp(*this, m));
  }

  void hash_state(tocttou::StateHasher& h) const override {
    hash_setattr(h);
    h.u64(uid_);
    h.u64(gid_);
  }

 protected:
  bool permitted(const Inode& t, const Creds& c) const override {
    (void)t;
    return c.is_root();  // only root may give files away
  }
  Duration work_cost() const override { return vfs_.costs().chown_base; }
  void apply(Inode& t) override {
    t.set_owner(uid_, gid_);
  }

 private:
  ChownOp(const ChownOp& o, sim::CloneMap& m)
      : SetAttrOp(o, m), uid_(o.uid_), gid_(o.gid_) {}

  sim::Uid uid_;
  sim::Gid gid_;
};

// ---------------------------------------------------------------------------
// Fault wrapper
// ---------------------------------------------------------------------------

/// Consults the round's FaultInjector on first advance; on injection the
/// syscall fails at entry (out-slots written, Step::done) and the inner
/// op never runs — no semaphores were touched, so nothing needs undoing.
/// Otherwise delegates to the inner op entirely.
class FaultableOp final : public ServiceOp {
 public:
  FaultableOp(sim::FaultInjector* faults, std::unique_ptr<ServiceOp> inner,
              std::string path, Errno* err_out, OpenResult* open_out)
      : faults_(faults),
        inner_(std::move(inner)),
        path_(std::move(path)),
        err_out_(err_out),
        open_out_(open_out) {}

  std::string_view name() const override { return inner_->name(); }
  int libc_page() const override { return inner_->libc_page(); }
  void fill_record(trace::SyscallRecord& rec) const override {
    inner_->fill_record(rec);
  }

  Step advance(ServiceContext& ctx) override {
    if (!decided_) {
      decided_ = true;
      if (const auto e =
              faults_->syscall_error(inner_->name(), path_, ctx.proc.pid())) {
        if (open_out_ != nullptr) {
          open_out_->fd = -1;
          open_out_->err = *e;
        }
        if (err_out_ != nullptr) *err_out_ = *e;
        return Step::done(*e);
      }
    }
    return inner_->advance(ctx);
  }

  std::unique_ptr<ServiceOp> clone(sim::CloneMap& m) const override {
    return std::unique_ptr<ServiceOp>(new FaultableOp(*this, m));
  }

 private:
  FaultableOp(const FaultableOp& o, sim::CloneMap& m)
      : faults_(m.remap(o.faults_)), inner_(o.inner_->clone(m)),
        path_(o.path_), err_out_(m.remap(o.err_out_)),
        open_out_(m.remap(o.open_out_)), decided_(o.decided_) {}

  sim::FaultInjector* faults_;
  std::unique_ptr<ServiceOp> inner_;
  std::string path_;  // for path-prefix filters ("" for fd-based ops)
  Errno* err_out_;
  OpenResult* open_out_;
  bool decided_ = false;
};

/// Wraps `inner` when the attached injector carries syscall_error specs;
/// otherwise returns it untouched (the common, no-fault case).
std::unique_ptr<ServiceOp> maybe_fault(Vfs& vfs, std::string path,
                                       Errno* err_out, OpenResult* open_out,
                                       std::unique_ptr<ServiceOp> inner) {
  sim::FaultInjector* f = vfs.fault_injector();
  if (f == nullptr || !f->wants_syscall_errors()) return inner;
  return std::make_unique<FaultableOp>(f, std::move(inner), std::move(path),
                                       err_out, open_out);
}

}  // namespace

// ---------------------------------------------------------------------------
// Factory methods
// ---------------------------------------------------------------------------

// Path-taking factories copy the path before moving it into the op so
// the fault wrapper can apply path-prefix filters; fd-based factories
// pass "" (they carry no path, by design — see vfs.h).

std::unique_ptr<ServiceOp> Vfs::stat_op(std::string path, StatBuf* out,
                                        Errno* err_out) {
  std::string p = path;
  return maybe_fault(
      *this, std::move(p), err_out, nullptr,
      std::make_unique<StatOp>(*this, std::move(path), true, out, err_out));
}

std::unique_ptr<ServiceOp> Vfs::lstat_op(std::string path, StatBuf* out,
                                         Errno* err_out) {
  std::string p = path;
  return maybe_fault(
      *this, std::move(p), err_out, nullptr,
      std::make_unique<StatOp>(*this, std::move(path), false, out, err_out));
}

std::unique_ptr<ServiceOp> Vfs::access_op(std::string path, Errno* err_out) {
  std::string p = path;
  return maybe_fault(
      *this, std::move(p), err_out, nullptr,
      std::make_unique<AccessOp>(*this, std::move(path), err_out));
}

std::unique_ptr<ServiceOp> Vfs::open_op(std::string path, OpenFlags flags,
                                        Mode mode, OpenResult* out) {
  std::string p = path;
  return maybe_fault(
      *this, std::move(p), nullptr, out,
      std::make_unique<OpenOp>(*this, std::move(path), flags, mode, out));
}

std::unique_ptr<ServiceOp> Vfs::close_op(int fd, Errno* err_out) {
  return maybe_fault(*this, "", err_out, nullptr,
                     std::make_unique<CloseOp>(*this, fd, err_out));
}

std::unique_ptr<ServiceOp> Vfs::write_op(int fd, std::uint64_t bytes,
                                         Errno* err_out) {
  return maybe_fault(*this, "", err_out, nullptr,
                     std::make_unique<WriteOp>(*this, fd, bytes, err_out));
}

std::unique_ptr<ServiceOp> Vfs::read_op(int fd, std::uint64_t bytes,
                                        Errno* err_out) {
  return maybe_fault(*this, "", err_out, nullptr,
                     std::make_unique<ReadOp>(*this, fd, bytes, err_out));
}

std::unique_ptr<ServiceOp> Vfs::rename_op(std::string oldpath,
                                          std::string newpath,
                                          Errno* err_out) {
  std::string p = oldpath;
  return maybe_fault(
      *this, std::move(p), err_out, nullptr,
      std::make_unique<RenameOp>(*this, std::move(oldpath),
                                 std::move(newpath), err_out));
}

std::unique_ptr<ServiceOp> Vfs::unlink_op(std::string path, Errno* err_out) {
  std::string p = path;
  return maybe_fault(
      *this, std::move(p), err_out, nullptr,
      std::make_unique<UnlinkOp>(*this, std::move(path), err_out));
}

std::unique_ptr<ServiceOp> Vfs::symlink_op(std::string target,
                                           std::string linkpath,
                                           Errno* err_out) {
  std::string p = linkpath;
  return maybe_fault(
      *this, std::move(p), err_out, nullptr,
      std::make_unique<SymlinkOp>(*this, std::move(target),
                                  std::move(linkpath), err_out));
}

std::unique_ptr<ServiceOp> Vfs::chmod_op(std::string path, Mode mode,
                                         Errno* err_out) {
  std::string p = path;
  return maybe_fault(
      *this, std::move(p), err_out, nullptr,
      std::make_unique<ChmodOp>(*this, std::move(path), mode, err_out));
}

std::unique_ptr<ServiceOp> Vfs::chown_op(std::string path, sim::Uid uid,
                                         sim::Gid gid, Errno* err_out) {
  std::string p = path;
  return maybe_fault(
      *this, std::move(p), err_out, nullptr,
      std::make_unique<ChownOp>(*this, std::move(path), uid, gid, err_out));
}

std::unique_ptr<ServiceOp> Vfs::mkdir_op(std::string path, Mode mode,
                                         Errno* err_out) {
  std::string p = path;
  return maybe_fault(
      *this, std::move(p), err_out, nullptr,
      std::make_unique<MkdirOp>(*this, std::move(path), mode, err_out));
}

std::unique_ptr<ServiceOp> Vfs::readlink_op(std::string path,
                                            std::string* out,
                                            Errno* err_out) {
  std::string p = path;
  return maybe_fault(
      *this, std::move(p), err_out, nullptr,
      std::make_unique<ReadlinkOp>(*this, std::move(path), out, err_out));
}

std::unique_ptr<ServiceOp> Vfs::link_op(std::string oldpath,
                                        std::string newpath, Errno* err_out) {
  std::string p = oldpath;
  return maybe_fault(
      *this, std::move(p), err_out, nullptr,
      std::make_unique<LinkOp>(*this, std::move(oldpath),
                               std::move(newpath), err_out));
}

std::unique_ptr<ServiceOp> Vfs::fstat_op(int fd, StatBuf* out,
                                         Errno* err_out) {
  return maybe_fault(*this, "", err_out, nullptr,
                     std::make_unique<FstatOp>(*this, fd, out, err_out));
}

std::unique_ptr<ServiceOp> Vfs::fchmod_op(int fd, Mode mode, Errno* err_out) {
  return maybe_fault(*this, "", err_out, nullptr,
                     std::make_unique<FchmodOp>(*this, fd, mode, err_out));
}

std::unique_ptr<ServiceOp> Vfs::fchown_op(int fd, sim::Uid uid, sim::Gid gid,
                                          Errno* err_out) {
  return maybe_fault(*this, "", err_out, nullptr,
                     std::make_unique<FchownOp>(*this, fd, uid, gid, err_out));
}

}  // namespace tocttou::fs
