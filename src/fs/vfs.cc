#include "tocttou/fs/vfs.h"

#include <new>

#include "tocttou/common/strings.h"
#include "tocttou/sim/clone.h"

namespace tocttou::fs {

const char* to_string(FileType t) {
  switch (t) {
    case FileType::regular:
      return "regular";
    case FileType::directory:
      return "directory";
    case FileType::symlink:
      return "symlink";
  }
  return "?";
}

Vfs::Vfs(SyscallCosts costs) : costs_(costs) { init_root(); }

Vfs::Vfs(const Vfs& o, sim::CloneMap& m)
    : next_ino_(o.next_ino_),
      costs_(o.costs_),
      root_(o.root_),
      fd_tables_(o.fd_tables_),
      faults_(m.remap(o.faults_)),
      metrics_(m.remap(o.metrics_)),
      arena_reuses_(o.arena_reuses_) {
  m.add_range(&o, this, sizeof(Vfs));
  for (const auto& [ino, node] : o.inodes_) {
    auto copy = std::make_unique<Inode>(*node, m);
    m.add_range(node.get(), copy.get(), sizeof(Inode));
    inodes_.emplace(ino, std::move(copy));
  }
}

Vfs::~Vfs() = default;

void Vfs::init_root() {
  Inode& r = alloc_inode(FileType::directory, sim::kRootUid, sim::kRootGid,
                         kModeDefaultDir);
  r.nlink_ = 1;
  root_ = r.ino();
}

void Vfs::reset(SyscallCosts costs) {
  // Recycle the round's inode allocations into the arena before wiping
  // the table; alloc_inode() reinits them in place next round.
  for (auto& [ino, node] : inodes_) {
    if (arena_.size() >= kMaxArena) break;
    arena_.push_back(std::move(node));
  }
  costs_ = costs;
  inodes_.clear();
  fd_tables_.clear();
  next_ino_ = 1;
  faults_ = nullptr;
  metrics_ = nullptr;
  init_root();
}

Inode& Vfs::alloc_inode(FileType type, sim::Uid uid, sim::Gid gid,
                        Mode mode) {
  const Ino ino = next_ino_++;
  std::unique_ptr<Inode> node;
  std::string sem_name =
      strfmt("i_sem:%llu", static_cast<unsigned long long>(ino));
  if (!arena_.empty()) {
    // Reinit a recycled allocation in place: destroy the stale inode,
    // then construct the new one into the same storage. The unique_ptr
    // is released around the destructor call so a throwing constructor
    // cannot lead to a double-destroy.
    node = std::move(arena_.back());
    arena_.pop_back();
    Inode* raw = node.release();
    raw->~Inode();
    ::new (raw) Inode(ino, type, uid, gid, mode, std::move(sem_name));
    node.reset(raw);
    ++arena_reuses_;
  } else {
    node = std::make_unique<Inode>(ino, type, uid, gid, mode,
                                   std::move(sem_name));
  }
  Inode& ref = *node;
  inodes_.emplace(ino, std::move(node));
  return ref;
}

const Inode& Vfs::inode(Ino ino) const {
  auto it = inodes_.find(ino);
  TOCTTOU_CHECK(it != inodes_.end(), "unknown inode");
  return *it->second;
}

Inode& Vfs::inode_mut(Ino ino) {
  auto it = inodes_.find(ino);
  TOCTTOU_CHECK(it != inodes_.end(), "unknown inode");
  return *it->second;
}

Ino Vfs::lookup_in(Ino parent, std::string_view name) const {
  const Inode& dir = inode(parent);
  if (!dir.is_dir()) return kNoIno;
  auto it = dir.entries().find(name);
  return it == dir.entries().end() ? kNoIno : it->second;
}

std::size_t Vfs::component_count(const std::string& path) {
  return count_path_components(path);
}

namespace {
struct ResolveOutcome {
  Errno err = Errno::ok;
  Ino ino = kNoIno;
};
}  // namespace

// Recursive resolution helper; `follow_final` resolves a final symlink.
// `path` is walked as string_view slices; it must stay alive for the
// duration of the call (symlink targets recursed into live in their
// inodes, which outlive the walk).
static ResolveOutcome resolve_rec(const Vfs& vfs, std::string_view path,
                                  bool follow_final, int depth) {
  if (depth > Vfs::kMaxSymlinkDepth) return {Errno::eloop, kNoIno};
  if (!is_absolute_path(path)) return {Errno::einval, kNoIno};
  const auto parts = split_path_views(path);
  Ino cur = vfs.root();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i] == "..") return {Errno::einval, kNoIno};  // not modeled
    const Inode& dir = vfs.inode(cur);
    if (!dir.is_dir()) return {Errno::enotdir, kNoIno};
    const Ino child = vfs.lookup_in(cur, parts[i]);
    if (child == kNoIno) return {Errno::enoent, kNoIno};
    const Inode& cn = vfs.inode(child);
    const bool last = (i + 1 == parts.size());
    if (cn.is_symlink() && (!last || follow_final)) {
      const auto sub =
          resolve_rec(vfs, cn.symlink_target(), true, depth + 1);
      if (sub.err != Errno::ok) return sub;
      if (!last && !vfs.inode(sub.ino).is_dir()) {
        return {Errno::enotdir, kNoIno};
      }
      cur = sub.ino;
    } else {
      cur = child;
    }
  }
  return {Errno::ok, cur};
}

Result<Ino> Vfs::lookup(const std::string& path, bool follow) const {
  const auto out = resolve_rec(*this, path, follow, 0);
  if (out.err != Errno::ok) return out.err;
  return out.ino;
}

Vfs::WalkResult Vfs::walk_prefix(const std::string& path) const {
  WalkResult res;
  if (!is_absolute_path(path)) {
    res.err = Errno::einval;
    return res;
  }
  const auto parts = split_path_views(path);
  if (parts.empty()) {
    res.err = Errno::einval;  // operating on "/" itself is not modeled
    return res;
  }
  Ino cur = root_;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (parts[i] == "..") {
      res.err = Errno::einval;
      return res;
    }
    const Inode& dir = inode(cur);
    if (!dir.is_dir()) {
      res.err = Errno::enotdir;
      return res;
    }
    Ino child = lookup_in(cur, parts[i]);
    if (child == kNoIno) {
      res.err = Errno::enoent;
      return res;
    }
    const Inode& cn = inode(child);
    if (cn.is_symlink()) {
      const auto sub = resolve_rec(*this, cn.symlink_target(), true, 1);
      if (sub.err != Errno::ok) {
        res.err = sub.err;
        return res;
      }
      child = sub.ino;
    }
    if (!inode(child).is_dir()) {
      res.err = Errno::enotdir;
      return res;
    }
    cur = child;
  }
  const std::string_view final = parts.back();
  if (final == "..") {
    res.err = Errno::einval;
    return res;
  }
  if (!inode(cur).is_dir()) {
    res.err = Errno::enotdir;
    return res;
  }
  res.parent = cur;
  res.final_name = std::string(final);
  res.target = lookup_in(cur, final);
  return res;
}

Ino Vfs::mkdir_p(const std::string& path, sim::Uid uid, sim::Gid gid,
                 Mode mode) {
  TOCTTOU_CHECK(is_absolute_path(path), "mkdir_p requires an absolute path");
  Ino cur = root_;
  for (const auto& part : split_path(path)) {
    TOCTTOU_CHECK(part != "..", "'..' is not modeled");
    Ino child = lookup_in(cur, part);
    if (child == kNoIno) {
      Inode& n = alloc_inode(FileType::directory, uid, gid, mode);
      link_entry(cur, part, n.ino());
      child = n.ino();
    }
    TOCTTOU_CHECK(inode(child).is_dir(), "mkdir_p path crosses a non-dir");
    cur = child;
  }
  return cur;
}

Ino Vfs::create_file(const std::string& path, sim::Uid uid, sim::Gid gid,
                     Mode mode, std::uint64_t size_bytes) {
  const auto walk = walk_prefix(path);
  TOCTTOU_CHECK(walk.err == Errno::ok, "create_file: bad parent path");
  TOCTTOU_CHECK(walk.target == kNoIno, "create_file: path already exists");
  Inode& n = alloc_inode(FileType::regular, uid, gid, mode);
  n.size_bytes_ = size_bytes;
  link_entry(walk.parent, walk.final_name, n.ino());
  return n.ino();
}

Ino Vfs::create_symlink(const std::string& path, const std::string& target,
                        sim::Uid uid, sim::Gid gid) {
  const auto walk = walk_prefix(path);
  TOCTTOU_CHECK(walk.err == Errno::ok, "create_symlink: bad parent path");
  TOCTTOU_CHECK(walk.target == kNoIno, "create_symlink: path already exists");
  Inode& n = alloc_inode(FileType::symlink, uid, gid, 0777);
  n.symlink_target_ = target;
  link_entry(walk.parent, walk.final_name, n.ino());
  return n.ino();
}

void Vfs::link_entry(Ino dir, const std::string& name, Ino target) {
  Inode& d = inode_mut(dir);
  TOCTTOU_CHECK(d.is_dir(), "link_entry target is not a directory");
  TOCTTOU_CHECK(!d.entries_.contains(name), "link_entry: name exists");
  d.entries_[name] = target;
  ++inode_mut(target).nlink_;
}

void Vfs::unlink_entry(Ino dir, const std::string& name) {
  Inode& d = inode_mut(dir);
  auto it = d.entries_.find(name);
  TOCTTOU_CHECK(it != d.entries_.end(), "unlink_entry: no such name");
  Inode& t = inode_mut(it->second);
  --t.nlink_;
  TOCTTOU_CHECK(t.nlink_ >= 0, "negative nlink");
  d.entries_.erase(it);
  // Inodes are never physically erased within a round: orphan inodes
  // (nlink 0 with open fds) are a modeled behaviour, and keeping
  // tombstones keeps Ino references held by in-flight ops valid.
}

void Vfs::release_ref(Ino ino) {
  Inode& n = inode_mut(ino);
  --n.open_refs_;
  TOCTTOU_CHECK(n.open_refs_ >= 0, "negative open_refs");
}

bool Vfs::may_read(const Inode& n, const Creds& c) {
  if (c.is_root()) return true;
  if (n.uid() == c.uid) return (n.mode() & 0400) != 0;
  if (n.gid() == c.gid) return (n.mode() & 0040) != 0;
  return (n.mode() & 0004) != 0;
}

bool Vfs::may_write(const Inode& n, const Creds& c) {
  if (c.is_root()) return true;
  if (n.uid() == c.uid) return (n.mode() & 0200) != 0;
  if (n.gid() == c.gid) return (n.mode() & 0020) != 0;
  return (n.mode() & 0002) != 0;
}

bool Vfs::may_exec(const Inode& n, const Creds& c) {
  if (c.is_root()) return true;
  if (n.uid() == c.uid) return (n.mode() & 0100) != 0;
  if (n.gid() == c.gid) return (n.mode() & 0010) != 0;
  return (n.mode() & 0001) != 0;
}

int Vfs::fd_alloc(sim::Pid pid, Ino ino, OpenFlags flags) {
  auto& table = fd_tables_[pid];
  // POSIX: the lowest free descriptor. 0..2 are notionally stdio; the
  // table is ordered, so the first gap at or above 3 is the answer.
  int fd = 3;
  for (auto it = table.lower_bound(3); it != table.end() && it->first == fd;
       ++it) {
    ++fd;
  }
  table[fd] = OpenFile{ino, flags};
  ++inode_mut(ino).open_refs_;
  return fd;
}

Result<OpenFile> Vfs::fd_get(sim::Pid pid, int fd) const {
  auto t = fd_tables_.find(pid);
  if (t == fd_tables_.end()) return Errno::ebadf;
  auto it = t->second.find(fd);
  if (it == t->second.end()) return Errno::ebadf;
  return it->second;
}

Errno Vfs::fd_close(sim::Pid pid, int fd) {
  auto t = fd_tables_.find(pid);
  if (t == fd_tables_.end()) return Errno::ebadf;
  auto it = t->second.find(fd);
  if (it == t->second.end()) return Errno::ebadf;
  release_ref(it->second.ino);
  t->second.erase(it);
  return Errno::ok;
}

std::size_t Vfs::open_fd_count(sim::Pid pid) const {
  auto t = fd_tables_.find(pid);
  return t == fd_tables_.end() ? 0 : t->second.size();
}

void Vfs::hash_state(StateHasher& h) const {
  h.u64(next_ino_);
  h.u64(root_);
  h.u64(inodes_.size());
  for (const auto& [ino, node] : inodes_) node->hash_state(h);
  // fd tables: the domain (which pids have tables, which fds are open,
  // what they point at) is sim state. Two trees that are equal but whose
  // open-fd tables differ MUST hash differently — a later write/fchown
  // through the surviving fd diverges.
  h.u64(fd_tables_.size());
  for (const auto& [pid, table] : fd_tables_) {
    h.u64(pid);
    h.u64(table.size());
    for (const auto& [fd, of] : table) {
      h.i64(fd);
      h.u64(of.ino);
      h.boolean(of.flags.write);
      h.boolean(of.flags.create);
      h.boolean(of.flags.truncate);
      h.boolean(of.flags.excl);
    }
  }
}

std::vector<std::string> Vfs::audit() const {
  std::vector<std::string> violations;
  const auto report = [&violations](std::string msg) {
    violations.push_back(std::move(msg));
  };

  // Reference counts observed by walking every structure.
  std::map<Ino, int> entry_refs;   // directory entries naming each inode
  std::map<Ino, int> fd_refs;      // fd-table entries referencing each inode
  entry_refs[root_] = 1;  // the root is self-anchored (nlink 1, no entry)

  for (const auto& [ino, node] : inodes_) {
    if (!node->is_dir()) continue;
    for (const auto& [name, target] : node->entries()) {
      if (!inodes_.contains(target)) {
        report(strfmt("dangling entry: dir %llu '%s' -> unknown inode %llu",
                      static_cast<unsigned long long>(ino), name.c_str(),
                      static_cast<unsigned long long>(target)));
        continue;
      }
      ++entry_refs[target];
    }
  }
  for (const auto& [pid, table] : fd_tables_) {
    for (const auto& [fd, file] : table) {
      if (!inodes_.contains(file.ino)) {
        report(strfmt("dangling fd: pid %d fd %d -> unknown inode %llu",
                      static_cast<int>(pid), fd,
                      static_cast<unsigned long long>(file.ino)));
        continue;
      }
      ++fd_refs[file.ino];
    }
  }

  for (const auto& [ino, node] : inodes_) {
    const int expect_nlink = entry_refs.contains(ino) ? entry_refs[ino] : 0;
    if (node->nlink() != expect_nlink) {
      report(strfmt("nlink mismatch: inode %llu has nlink %d but %d "
                    "directory entr%s reference it",
                    static_cast<unsigned long long>(ino), node->nlink(),
                    expect_nlink, expect_nlink == 1 ? "y" : "ies"));
    }
    const int expect_refs = fd_refs.contains(ino) ? fd_refs[ino] : 0;
    if (node->open_refs() != expect_refs) {
      report(strfmt("open_refs mismatch: inode %llu has open_refs %d but "
                    "%d fd-table entr%s reference it",
                    static_cast<unsigned long long>(ino), node->open_refs(),
                    expect_refs, expect_refs == 1 ? "y" : "ies"));
    }
    if (node->nlink() < 0) {
      report(strfmt("negative nlink on inode %llu",
                    static_cast<unsigned long long>(ino)));
    }
    if (node->open_refs() < 0) {
      report(strfmt("negative open_refs on inode %llu",
                    static_cast<unsigned long long>(ino)));
    }
    if (node->is_symlink() && node->symlink_target().empty()) {
      report(strfmt("symlink inode %llu has an empty target",
                    static_cast<unsigned long long>(ino)));
    }
  }
  return violations;
}

}  // namespace tocttou::fs
