#include "tocttou/fs/vfs.h"

#include "tocttou/common/strings.h"

namespace tocttou::fs {

const char* to_string(FileType t) {
  switch (t) {
    case FileType::regular:
      return "regular";
    case FileType::directory:
      return "directory";
    case FileType::symlink:
      return "symlink";
  }
  return "?";
}

Vfs::Vfs(SyscallCosts costs) : costs_(costs) {
  Inode& r = alloc_inode(FileType::directory, sim::kRootUid, sim::kRootGid,
                         kModeDefaultDir);
  r.nlink_ = 1;
  root_ = r.ino();
}

Vfs::~Vfs() = default;

Inode& Vfs::alloc_inode(FileType type, sim::Uid uid, sim::Gid gid,
                        Mode mode) {
  const Ino ino = next_ino_++;
  auto node = std::make_unique<Inode>(ino, type, uid, gid, mode,
                                      strfmt("i_sem:%llu",
                                             static_cast<unsigned long long>(ino)));
  Inode& ref = *node;
  inodes_.emplace(ino, std::move(node));
  return ref;
}

const Inode& Vfs::inode(Ino ino) const {
  auto it = inodes_.find(ino);
  TOCTTOU_CHECK(it != inodes_.end(), "unknown inode");
  return *it->second;
}

Inode& Vfs::inode_mut(Ino ino) {
  auto it = inodes_.find(ino);
  TOCTTOU_CHECK(it != inodes_.end(), "unknown inode");
  return *it->second;
}

Ino Vfs::lookup_in(Ino parent, const std::string& name) const {
  const Inode& dir = inode(parent);
  if (!dir.is_dir()) return kNoIno;
  auto it = dir.entries().find(name);
  return it == dir.entries().end() ? kNoIno : it->second;
}

std::size_t Vfs::component_count(const std::string& path) {
  return split_path(path).size();
}

namespace {
struct ResolveOutcome {
  Errno err = Errno::ok;
  Ino ino = kNoIno;
};
}  // namespace

// Recursive resolution helper; `follow_final` resolves a final symlink.
static ResolveOutcome resolve_rec(const Vfs& vfs, const std::string& path,
                                  bool follow_final, int depth) {
  if (depth > Vfs::kMaxSymlinkDepth) return {Errno::eloop, kNoIno};
  if (!is_absolute_path(path)) return {Errno::einval, kNoIno};
  const auto parts = split_path(path);
  Ino cur = vfs.root();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i] == "..") return {Errno::einval, kNoIno};  // not modeled
    const Inode& dir = vfs.inode(cur);
    if (!dir.is_dir()) return {Errno::enotdir, kNoIno};
    const Ino child = vfs.lookup_in(cur, parts[i]);
    if (child == kNoIno) return {Errno::enoent, kNoIno};
    const Inode& cn = vfs.inode(child);
    const bool last = (i + 1 == parts.size());
    if (cn.is_symlink() && (!last || follow_final)) {
      const auto sub =
          resolve_rec(vfs, cn.symlink_target(), true, depth + 1);
      if (sub.err != Errno::ok) return sub;
      if (!last && !vfs.inode(sub.ino).is_dir()) {
        return {Errno::enotdir, kNoIno};
      }
      cur = sub.ino;
    } else {
      cur = child;
    }
  }
  return {Errno::ok, cur};
}

Result<Ino> Vfs::lookup(const std::string& path, bool follow) const {
  const auto out = resolve_rec(*this, path, follow, 0);
  if (out.err != Errno::ok) return out.err;
  return out.ino;
}

Vfs::WalkResult Vfs::walk_prefix(const std::string& path) const {
  WalkResult res;
  if (!is_absolute_path(path)) {
    res.err = Errno::einval;
    return res;
  }
  const auto parts = split_path(path);
  if (parts.empty()) {
    res.err = Errno::einval;  // operating on "/" itself is not modeled
    return res;
  }
  Ino cur = root_;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (parts[i] == "..") {
      res.err = Errno::einval;
      return res;
    }
    const Inode& dir = inode(cur);
    if (!dir.is_dir()) {
      res.err = Errno::enotdir;
      return res;
    }
    Ino child = lookup_in(cur, parts[i]);
    if (child == kNoIno) {
      res.err = Errno::enoent;
      return res;
    }
    const Inode& cn = inode(child);
    if (cn.is_symlink()) {
      const auto sub = resolve_rec(*this, cn.symlink_target(), true, 1);
      if (sub.err != Errno::ok) {
        res.err = sub.err;
        return res;
      }
      child = sub.ino;
    }
    if (!inode(child).is_dir()) {
      res.err = Errno::enotdir;
      return res;
    }
    cur = child;
  }
  const std::string& final = parts.back();
  if (final == "..") {
    res.err = Errno::einval;
    return res;
  }
  if (!inode(cur).is_dir()) {
    res.err = Errno::enotdir;
    return res;
  }
  res.parent = cur;
  res.final_name = final;
  res.target = lookup_in(cur, final);
  return res;
}

Ino Vfs::mkdir_p(const std::string& path, sim::Uid uid, sim::Gid gid,
                 Mode mode) {
  TOCTTOU_CHECK(is_absolute_path(path), "mkdir_p requires an absolute path");
  Ino cur = root_;
  for (const auto& part : split_path(path)) {
    TOCTTOU_CHECK(part != "..", "'..' is not modeled");
    Ino child = lookup_in(cur, part);
    if (child == kNoIno) {
      Inode& n = alloc_inode(FileType::directory, uid, gid, mode);
      link_entry(cur, part, n.ino());
      child = n.ino();
    }
    TOCTTOU_CHECK(inode(child).is_dir(), "mkdir_p path crosses a non-dir");
    cur = child;
  }
  return cur;
}

Ino Vfs::create_file(const std::string& path, sim::Uid uid, sim::Gid gid,
                     Mode mode, std::uint64_t size_bytes) {
  const auto walk = walk_prefix(path);
  TOCTTOU_CHECK(walk.err == Errno::ok, "create_file: bad parent path");
  TOCTTOU_CHECK(walk.target == kNoIno, "create_file: path already exists");
  Inode& n = alloc_inode(FileType::regular, uid, gid, mode);
  n.size_bytes_ = size_bytes;
  link_entry(walk.parent, walk.final_name, n.ino());
  return n.ino();
}

Ino Vfs::create_symlink(const std::string& path, const std::string& target,
                        sim::Uid uid, sim::Gid gid) {
  const auto walk = walk_prefix(path);
  TOCTTOU_CHECK(walk.err == Errno::ok, "create_symlink: bad parent path");
  TOCTTOU_CHECK(walk.target == kNoIno, "create_symlink: path already exists");
  Inode& n = alloc_inode(FileType::symlink, uid, gid, 0777);
  n.symlink_target_ = target;
  link_entry(walk.parent, walk.final_name, n.ino());
  return n.ino();
}

void Vfs::link_entry(Ino dir, const std::string& name, Ino target) {
  Inode& d = inode_mut(dir);
  TOCTTOU_CHECK(d.is_dir(), "link_entry target is not a directory");
  TOCTTOU_CHECK(!d.entries_.contains(name), "link_entry: name exists");
  d.entries_[name] = target;
  ++inode_mut(target).nlink_;
}

void Vfs::unlink_entry(Ino dir, const std::string& name) {
  Inode& d = inode_mut(dir);
  auto it = d.entries_.find(name);
  TOCTTOU_CHECK(it != d.entries_.end(), "unlink_entry: no such name");
  Inode& t = inode_mut(it->second);
  --t.nlink_;
  TOCTTOU_CHECK(t.nlink_ >= 0, "negative nlink");
  d.entries_.erase(it);
  // Inodes are never physically erased within a round: orphan inodes
  // (nlink 0 with open fds) are a modeled behaviour, and keeping
  // tombstones keeps Ino references held by in-flight ops valid.
}

void Vfs::release_ref(Ino ino) {
  Inode& n = inode_mut(ino);
  --n.open_refs_;
  TOCTTOU_CHECK(n.open_refs_ >= 0, "negative open_refs");
}

bool Vfs::may_read(const Inode& n, const Creds& c) {
  if (c.is_root()) return true;
  if (n.uid() == c.uid) return (n.mode() & 0400) != 0;
  if (n.gid() == c.gid) return (n.mode() & 0040) != 0;
  return (n.mode() & 0004) != 0;
}

bool Vfs::may_write(const Inode& n, const Creds& c) {
  if (c.is_root()) return true;
  if (n.uid() == c.uid) return (n.mode() & 0200) != 0;
  if (n.gid() == c.gid) return (n.mode() & 0020) != 0;
  return (n.mode() & 0002) != 0;
}

bool Vfs::may_exec(const Inode& n, const Creds& c) {
  if (c.is_root()) return true;
  if (n.uid() == c.uid) return (n.mode() & 0100) != 0;
  if (n.gid() == c.gid) return (n.mode() & 0010) != 0;
  return (n.mode() & 0001) != 0;
}

int Vfs::fd_alloc(sim::Pid pid, Ino ino, OpenFlags flags) {
  auto& table = fd_tables_[pid];
  int& next = next_fd_[pid];
  if (next < 3) next = 3;  // 0..2 notionally stdio
  const int fd = next++;
  table[fd] = OpenFile{ino, flags};
  ++inode_mut(ino).open_refs_;
  return fd;
}

Result<OpenFile> Vfs::fd_get(sim::Pid pid, int fd) const {
  auto t = fd_tables_.find(pid);
  if (t == fd_tables_.end()) return Errno::ebadf;
  auto it = t->second.find(fd);
  if (it == t->second.end()) return Errno::ebadf;
  return it->second;
}

Errno Vfs::fd_close(sim::Pid pid, int fd) {
  auto t = fd_tables_.find(pid);
  if (t == fd_tables_.end()) return Errno::ebadf;
  auto it = t->second.find(fd);
  if (it == t->second.end()) return Errno::ebadf;
  release_ref(it->second.ino);
  t->second.erase(it);
  return Errno::ok;
}

std::size_t Vfs::open_fd_count(sim::Pid pid) const {
  auto t = fd_tables_.find(pid);
  return t == fd_tables_.end() ? 0 : t->second.size();
}

}  // namespace tocttou::fs
