#include "tocttou/fs/vfs.h"

#include <new>

#include "tocttou/common/legacy.h"
#include "tocttou/common/strings.h"
#include "tocttou/sim/clone.h"

namespace tocttou::fs {

const char* to_string(FileType t) {
  switch (t) {
    case FileType::regular:
      return "regular";
    case FileType::directory:
      return "directory";
    case FileType::symlink:
      return "symlink";
  }
  return "?";
}

Vfs::Vfs(SyscallCosts costs)
    : costs_(costs), legacy_(legacy_structures_enabled()) {
  init_root();
}

Vfs::Vfs(const Vfs& o, sim::CloneMap& m)
    : next_ino_(o.next_ino_),
      costs_(o.costs_),
      root_(o.root_),
      fd_tables_(o.fd_tables_),
      touched_tables_(o.touched_tables_),
      faults_(m.remap(o.faults_)),
      metrics_(m.remap(o.metrics_)),
      arena_reuses_(o.arena_reuses_),
      legacy_(o.legacy_) {
  m.add_range(&o, this, sizeof(Vfs));
  inodes_.reserve(o.inodes_.size());
  for (const auto& node : o.inodes_) {
    auto copy = std::make_unique<Inode>(*node, m);
    m.add_range(node.get(), copy.get(), sizeof(Inode));
    if (legacy_) legacy_index_.emplace(copy->ino(), copy.get());
    inodes_.push_back(std::move(copy));
  }
}

Vfs::~Vfs() = default;

void Vfs::init_root() {
  Inode& r = alloc_inode(FileType::directory, sim::kRootUid, sim::kRootGid,
                         kModeDefaultDir);
  r.nlink_ = 1;
  root_ = r.ino();
}

void Vfs::reset(SyscallCosts costs) {
  legacy_ = legacy_structures_enabled();
  legacy_index_.clear();
  // Recycle the round's inode allocations into the arena before wiping
  // the table; alloc_inode() reinits them in place next round. The
  // legacy shim frees instead: the old structures re-malloced the world
  // every round, and the bench's before-leg must pay that.
  for (auto& node : inodes_) {
    if (legacy_ || arena_.size() >= kMaxArena) break;
    arena_.push_back(std::move(node));
  }
  costs_ = costs;
  inodes_.clear();
  // The fd tables are arena-backed too: wipe contents, keep both the
  // outer table vector and every inner slot vector's capacity.
  for (FdTable& t : fd_tables_) {
    t.touched = false;
    t.open_count = 0;
    t.slots.clear();
  }
  touched_tables_ = 0;
  next_ino_ = 1;
  faults_ = nullptr;
  metrics_ = nullptr;
  init_root();
}

Inode& Vfs::alloc_inode(FileType type, sim::Uid uid, sim::Gid gid,
                        Mode mode) {
  const Ino ino = next_ino_++;
  std::unique_ptr<Inode> node;
  std::string sem_name =
      strfmt("i_sem:%llu", static_cast<unsigned long long>(ino));
  if (!arena_.empty() && !legacy_) {
    // Reinit a recycled allocation in place: destroy the stale inode,
    // then construct the new one into the same storage. The unique_ptr
    // is released around the destructor call so a throwing constructor
    // cannot lead to a double-destroy.
    node = std::move(arena_.back());
    arena_.pop_back();
    Inode* raw = node.release();
    raw->~Inode();
    ::new (raw) Inode(ino, type, uid, gid, mode, std::move(sem_name));
    node.reset(raw);
    ++arena_reuses_;
  } else {
    node = std::make_unique<Inode>(ino, type, uid, gid, mode,
                                   std::move(sem_name));
  }
  Inode& ref = *node;
  TOCTTOU_CHECK(ino == inodes_.size() + 1, "non-dense inode allocation");
  if (legacy_) legacy_index_.emplace(ino, node.get());
  inodes_.push_back(std::move(node));
  return ref;
}

const Inode& Vfs::inode(Ino ino) const {
  if (legacy_) {
    const auto it = legacy_index_.find(ino);
    TOCTTOU_CHECK(it != legacy_index_.end(), "unknown inode");
    return *it->second;
  }
  TOCTTOU_CHECK(ino != kNoIno && ino <= inodes_.size(), "unknown inode");
  return *inodes_[ino - 1];
}

Inode& Vfs::inode_mut(Ino ino) {
  if (legacy_) {
    const auto it = legacy_index_.find(ino);
    TOCTTOU_CHECK(it != legacy_index_.end(), "unknown inode");
    return *it->second;
  }
  TOCTTOU_CHECK(ino != kNoIno && ino <= inodes_.size(), "unknown inode");
  return *inodes_[ino - 1];
}

Ino Vfs::lookup_in(Ino parent, std::string_view name) const {
  const Inode& dir = inode(parent);
  if (!dir.is_dir()) return kNoIno;
  return dir.lookup(name);
}

std::size_t Vfs::component_count(const std::string& path) {
  return count_path_components(path);
}

namespace {
struct ResolveOutcome {
  Errno err = Errno::ok;
  Ino ino = kNoIno;
};
}  // namespace

// Recursive resolution helper; `follow_final` resolves a final symlink.
// `path` is walked as string_view slices; it must stay alive for the
// duration of the call (symlink targets recursed into live in their
// inodes, which outlive the walk).
static ResolveOutcome resolve_rec(const Vfs& vfs, std::string_view path,
                                  bool follow_final, int depth) {
  if (depth > Vfs::kMaxSymlinkDepth) return {Errno::eloop, kNoIno};
  if (!is_absolute_path(path)) return {Errno::einval, kNoIno};
  const auto parts = split_path_views(path);
  Ino cur = vfs.root();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i] == "..") return {Errno::einval, kNoIno};  // not modeled
    const Inode& dir = vfs.inode(cur);
    if (!dir.is_dir()) return {Errno::enotdir, kNoIno};
    const Ino child = vfs.lookup_in(cur, parts[i]);
    if (child == kNoIno) return {Errno::enoent, kNoIno};
    const Inode& cn = vfs.inode(child);
    const bool last = (i + 1 == parts.size());
    if (cn.is_symlink() && (!last || follow_final)) {
      const auto sub =
          resolve_rec(vfs, cn.symlink_target(), true, depth + 1);
      if (sub.err != Errno::ok) return sub;
      if (!last && !vfs.inode(sub.ino).is_dir()) {
        return {Errno::enotdir, kNoIno};
      }
      cur = sub.ino;
    } else {
      cur = child;
    }
  }
  return {Errno::ok, cur};
}

Result<Ino> Vfs::lookup(const std::string& path, bool follow) const {
  const auto out = resolve_rec(*this, path, follow, 0);
  if (out.err != Errno::ok) return out.err;
  return out.ino;
}

Vfs::WalkResult Vfs::walk_prefix(const std::string& path) const {
  WalkResult res;
  if (!is_absolute_path(path)) {
    res.err = Errno::einval;
    return res;
  }
  const auto parts = split_path_views(path);
  if (parts.empty()) {
    res.err = Errno::einval;  // operating on "/" itself is not modeled
    return res;
  }
  Ino cur = root_;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (parts[i] == "..") {
      res.err = Errno::einval;
      return res;
    }
    const Inode& dir = inode(cur);
    if (!dir.is_dir()) {
      res.err = Errno::enotdir;
      return res;
    }
    Ino child = lookup_in(cur, parts[i]);
    if (child == kNoIno) {
      res.err = Errno::enoent;
      return res;
    }
    const Inode& cn = inode(child);
    if (cn.is_symlink()) {
      const auto sub = resolve_rec(*this, cn.symlink_target(), true, 1);
      if (sub.err != Errno::ok) {
        res.err = sub.err;
        return res;
      }
      child = sub.ino;
    }
    if (!inode(child).is_dir()) {
      res.err = Errno::enotdir;
      return res;
    }
    cur = child;
  }
  const std::string_view final = parts.back();
  if (final == "..") {
    res.err = Errno::einval;
    return res;
  }
  if (!inode(cur).is_dir()) {
    res.err = Errno::enotdir;
    return res;
  }
  res.parent = cur;
  res.final_name = std::string(final);
  res.target = lookup_in(cur, final);
  return res;
}

Ino Vfs::mkdir_p(const std::string& path, sim::Uid uid, sim::Gid gid,
                 Mode mode) {
  TOCTTOU_CHECK(is_absolute_path(path), "mkdir_p requires an absolute path");
  Ino cur = root_;
  for (const auto& part : split_path(path)) {
    TOCTTOU_CHECK(part != "..", "'..' is not modeled");
    Ino child = lookup_in(cur, part);
    if (child == kNoIno) {
      Inode& n = alloc_inode(FileType::directory, uid, gid, mode);
      link_entry(cur, part, n.ino());
      child = n.ino();
    }
    TOCTTOU_CHECK(inode(child).is_dir(), "mkdir_p path crosses a non-dir");
    cur = child;
  }
  return cur;
}

Ino Vfs::create_file(const std::string& path, sim::Uid uid, sim::Gid gid,
                     Mode mode, std::uint64_t size_bytes) {
  const auto walk = walk_prefix(path);
  TOCTTOU_CHECK(walk.err == Errno::ok, "create_file: bad parent path");
  TOCTTOU_CHECK(walk.target == kNoIno, "create_file: path already exists");
  Inode& n = alloc_inode(FileType::regular, uid, gid, mode);
  n.size_bytes_ = size_bytes;
  link_entry(walk.parent, walk.final_name, n.ino());
  return n.ino();
}

Ino Vfs::create_symlink(const std::string& path, const std::string& target,
                        sim::Uid uid, sim::Gid gid) {
  const auto walk = walk_prefix(path);
  TOCTTOU_CHECK(walk.err == Errno::ok, "create_symlink: bad parent path");
  TOCTTOU_CHECK(walk.target == kNoIno, "create_symlink: path already exists");
  Inode& n = alloc_inode(FileType::symlink, uid, gid, 0777);
  n.symlink_target_ = target;
  link_entry(walk.parent, walk.final_name, n.ino());
  return n.ino();
}

void Vfs::link_entry(Ino dir, const std::string& name, Ino target) {
  Inode& d = inode_mut(dir);
  TOCTTOU_CHECK(d.is_dir(), "link_entry target is not a directory");
  TOCTTOU_CHECK(d.lookup(name) == kNoIno, "link_entry: name exists");
  d.add_entry(name, target);
  ++inode_mut(target).nlink_;
}

void Vfs::unlink_entry(Ino dir, const std::string& name) {
  Inode& d = inode_mut(dir);
  auto it = d.entries_.find(name);
  TOCTTOU_CHECK(it != d.entries_.end(), "unlink_entry: no such name");
  Inode& t = inode_mut(it->second);
  --t.nlink_;
  TOCTTOU_CHECK(t.nlink_ >= 0, "negative nlink");
  d.remove_entry(it);
  // Inodes are never physically erased within a round: orphan inodes
  // (nlink 0 with open fds) are a modeled behaviour, and keeping
  // tombstones keeps Ino references held by in-flight ops valid.
}

void Vfs::release_ref(Ino ino) {
  Inode& n = inode_mut(ino);
  --n.open_refs_;
  TOCTTOU_CHECK(n.open_refs_ >= 0, "negative open_refs");
}

bool Vfs::may_read(const Inode& n, const Creds& c) {
  if (c.is_root()) return true;
  if (n.uid() == c.uid) return (n.mode() & 0400) != 0;
  if (n.gid() == c.gid) return (n.mode() & 0040) != 0;
  return (n.mode() & 0004) != 0;
}

bool Vfs::may_write(const Inode& n, const Creds& c) {
  if (c.is_root()) return true;
  if (n.uid() == c.uid) return (n.mode() & 0200) != 0;
  if (n.gid() == c.gid) return (n.mode() & 0020) != 0;
  return (n.mode() & 0002) != 0;
}

bool Vfs::may_exec(const Inode& n, const Creds& c) {
  if (c.is_root()) return true;
  if (n.uid() == c.uid) return (n.mode() & 0100) != 0;
  if (n.gid() == c.gid) return (n.mode() & 0010) != 0;
  return (n.mode() & 0001) != 0;
}

Vfs::FdTable* Vfs::table_of(sim::Pid pid) {
  if (pid == sim::kNoPid || fd_tables_.size() < pid) return nullptr;
  FdTable& t = fd_tables_[pid - 1];
  return t.touched ? &t : nullptr;
}

const Vfs::FdTable* Vfs::table_of(sim::Pid pid) const {
  if (pid == sim::kNoPid || fd_tables_.size() < pid) return nullptr;
  const FdTable& t = fd_tables_[pid - 1];
  return t.touched ? &t : nullptr;
}

int Vfs::fd_alloc(sim::Pid pid, Ino ino, OpenFlags flags) {
  TOCTTOU_CHECK(pid != sim::kNoPid, "fd_alloc for the null pid");
  if (fd_tables_.size() < pid) fd_tables_.resize(pid);
  FdTable& t = fd_tables_[pid - 1];
  if (!t.touched) {
    t.touched = true;
    ++touched_tables_;
  }
  // POSIX: the lowest free descriptor. 0..2 are notionally stdio; slot
  // index == fd, so scan for the first free slot at or above 3.
  if (t.slots.size() < 3) t.slots.resize(3);
  std::size_t fd = 3;
  while (fd < t.slots.size() && t.slots[fd].ino != kNoIno) ++fd;
  if (fd == t.slots.size()) t.slots.emplace_back();
  t.slots[fd] = OpenFile{ino, flags};
  ++t.open_count;
  ++inode_mut(ino).open_refs_;
  return static_cast<int>(fd);
}

Result<OpenFile> Vfs::fd_get(sim::Pid pid, int fd) const {
  const FdTable* t = table_of(pid);
  if (t == nullptr) return Errno::ebadf;
  if (fd < 0 || static_cast<std::size_t>(fd) >= t->slots.size() ||
      t->slots[static_cast<std::size_t>(fd)].ino == kNoIno) {
    return Errno::ebadf;
  }
  return t->slots[static_cast<std::size_t>(fd)];
}

Errno Vfs::fd_close(sim::Pid pid, int fd) {
  FdTable* t = table_of(pid);
  if (t == nullptr) return Errno::ebadf;
  if (fd < 0 || static_cast<std::size_t>(fd) >= t->slots.size() ||
      t->slots[static_cast<std::size_t>(fd)].ino == kNoIno) {
    return Errno::ebadf;
  }
  OpenFile& slot = t->slots[static_cast<std::size_t>(fd)];
  release_ref(slot.ino);
  slot = OpenFile{};
  --t->open_count;
  return Errno::ok;
}

std::size_t Vfs::open_fd_count(sim::Pid pid) const {
  const FdTable* t = table_of(pid);
  return t == nullptr ? 0 : static_cast<std::size_t>(t->open_count);
}

void Vfs::hash_state(StateHasher& h) const {
  h.u64(next_ino_);
  h.u64(root_);
  h.u64(inodes_.size());
  for (const auto& node : inodes_) node->hash_state(h);
  // fd tables: the domain (which pids have tables, which fds are open,
  // what they point at) is sim state. Two trees that are equal but whose
  // open-fd tables differ MUST hash differently — a later write/fchown
  // through the surviving fd diverges. The digest reproduces the old
  // map-of-maps byte stream exactly: touched tables in pid order, open
  // slots in fd order.
  h.u64(touched_tables_);
  for (std::size_t i = 0; i < fd_tables_.size(); ++i) {
    const FdTable& t = fd_tables_[i];
    if (!t.touched) continue;
    h.u64(i + 1);  // pid
    h.u64(static_cast<std::uint64_t>(t.open_count));
    for (std::size_t fd = 0; fd < t.slots.size(); ++fd) {
      const OpenFile& of = t.slots[fd];
      if (of.ino == kNoIno) continue;
      h.i64(static_cast<std::int64_t>(fd));
      h.u64(of.ino);
      h.boolean(of.flags.write);
      h.boolean(of.flags.create);
      h.boolean(of.flags.truncate);
      h.boolean(of.flags.excl);
    }
  }
}

std::vector<std::string> Vfs::audit() const {
  std::vector<std::string> violations;
  const auto report = [&violations](std::string msg) {
    violations.push_back(std::move(msg));
  };

  // Reference counts observed by walking every structure. Inos are dense,
  // so flat arrays sized once up front replace the old std::map counters
  // — a 10^5-inode round audits without a single mid-walk allocation.
  const auto known = [this](Ino ino) {
    return ino != kNoIno && ino <= inodes_.size();
  };
  std::vector<int> entry_refs(inodes_.size() + 1, 0);
  std::vector<int> fd_refs(inodes_.size() + 1, 0);
  entry_refs[root_] = 1;  // the root is self-anchored (nlink 1, no entry)

  for (std::size_t i = 0; i < inodes_.size(); ++i) {
    const Ino ino = i + 1;
    const Inode& node = *inodes_[i];
    if (!node.is_dir()) continue;
    for (const auto& [name, target] : node.entries()) {
      if (!known(target)) {
        report(strfmt("dangling entry: dir %llu '%s' -> unknown inode %llu",
                      static_cast<unsigned long long>(ino), name.c_str(),
                      static_cast<unsigned long long>(target)));
        continue;
      }
      ++entry_refs[target];
    }
  }
  for (std::size_t i = 0; i < fd_tables_.size(); ++i) {
    const FdTable& t = fd_tables_[i];
    if (!t.touched) continue;
    for (std::size_t fd = 0; fd < t.slots.size(); ++fd) {
      const OpenFile& file = t.slots[fd];
      if (file.ino == kNoIno) continue;
      if (!known(file.ino)) {
        report(strfmt("dangling fd: pid %d fd %d -> unknown inode %llu",
                      static_cast<int>(i + 1), static_cast<int>(fd),
                      static_cast<unsigned long long>(file.ino)));
        continue;
      }
      ++fd_refs[file.ino];
    }
  }

  for (std::size_t i = 0; i < inodes_.size(); ++i) {
    const Ino ino = i + 1;
    const Inode& node = *inodes_[i];
    const int expect_nlink = entry_refs[ino];
    if (node.nlink() != expect_nlink) {
      report(strfmt("nlink mismatch: inode %llu has nlink %d but %d "
                    "directory entr%s reference it",
                    static_cast<unsigned long long>(ino), node.nlink(),
                    expect_nlink, expect_nlink == 1 ? "y" : "ies"));
    }
    const int expect_refs = fd_refs[ino];
    if (node.open_refs() != expect_refs) {
      report(strfmt("open_refs mismatch: inode %llu has open_refs %d but "
                    "%d fd-table entr%s reference it",
                    static_cast<unsigned long long>(ino), node.open_refs(),
                    expect_refs, expect_refs == 1 ? "y" : "ies"));
    }
    if (node.nlink() < 0) {
      report(strfmt("negative nlink on inode %llu",
                    static_cast<unsigned long long>(ino)));
    }
    if (node.open_refs() < 0) {
      report(strfmt("negative open_refs on inode %llu",
                    static_cast<unsigned long long>(ino)));
    }
    if (node.is_symlink() && node.symlink_target().empty()) {
      report(strfmt("symlink inode %llu has an empty target",
                    static_cast<unsigned long long>(ino)));
    }
  }
  return violations;
}

}  // namespace tocttou::fs
