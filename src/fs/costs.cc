#include "tocttou/fs/costs.h"

namespace tocttou::fs {

using tocttou::Duration;

SyscallCosts SyscallCosts::xeon() {
  SyscallCosts c;
  c.path_component = Duration::micros(2);
  c.stat_base = Duration::micros(6);
  c.stat_locked_tail = Duration::micros(2);
  c.access_base = Duration::micros(5);
  c.open_base = Duration::micros(10);
  c.create_extra = Duration::micros(10);
  c.close_base = Duration::micros(8);
  c.write_base = Duration::micros(9);
  c.write_per_kb = Duration::micros(16);
  c.read_base = Duration::micros(7);
  c.read_per_kb = Duration::micros(4);
  c.rename_work = Duration::micros(18);
  c.rename_tail = Duration::micros(4);
  c.unlink_detach = Duration::micros(31);
  c.truncate_per_kb = Duration::micros_f(1.2);
  c.symlink_base = Duration::micros(11);
  c.link_base = Duration::micros(10);
  c.chmod_base = Duration::micros(7);
  c.chown_base = Duration::micros(7);
  c.mkdir_base = Duration::micros(14);
  c.readlink_base = Duration::micros(4);
  c.writeback_stall_prob = 2.0e-4;
  c.writeback_stall_mean = Duration::millis(2);
  c.writeback_stall_stdev = Duration::millis(1);
  return c;
}

SyscallCosts SyscallCosts::pentium_d() {
  // ~3x faster per operation than the 1.7 GHz Xeon; the paper reports a
  // typical stat of ~4us on this machine (Section 6.2.2).
  SyscallCosts c;
  c.path_component = Duration::nanos(600);
  c.stat_base = Duration::micros_f(2.2);
  c.stat_locked_tail = Duration::nanos(700);
  c.access_base = Duration::micros_f(1.8);
  c.open_base = Duration::micros_f(3.5);
  c.create_extra = Duration::micros_f(3.5);
  c.close_base = Duration::micros_f(2.5);
  c.write_base = Duration::micros(3);
  c.write_per_kb = Duration::micros_f(5.0);
  c.read_base = Duration::micros_f(2.2);
  c.read_per_kb = Duration::micros_f(1.3);
  c.rename_work = Duration::micros(6);
  c.rename_tail = Duration::micros_f(1.5);
  c.unlink_detach = Duration::micros_f(4.5);
  c.truncate_per_kb = Duration::nanos(400);
  c.symlink_base = Duration::micros_f(3.5);
  c.link_base = Duration::micros(3);
  c.chmod_base = Duration::micros_f(2.2);
  c.chown_base = Duration::micros_f(2.2);
  c.mkdir_base = Duration::micros_f(4.5);
  c.readlink_base = Duration::micros_f(1.3);
  c.writeback_stall_prob = 2.0e-4;
  c.writeback_stall_mean = Duration::millis(1);
  c.writeback_stall_stdev = Duration::micros(500);
  return c;
}

}  // namespace tocttou::fs
