#include "tocttou/sim/kernel.h"

#include <algorithm>

#include "tocttou/common/error.h"
#include "tocttou/common/strings.h"
#include "tocttou/detect/sync.h"
#include "tocttou/metrics/metrics.h"
#include "tocttou/sim/clone.h"
#include "tocttou/sim/faults.h"

namespace tocttou::sim {

namespace {

/// Background kernel-thread load generator: sleep an exponential interval,
/// then burn a short high-priority burst (DESIGN.md: the source of the
/// "some other process prevents the attacker from being scheduled" failures
/// in the paper's 1-byte vi experiments).
class BackgroundDaemon : public Program {
 public:
  explicit BackgroundDaemon(BackgroundLoad cfg) : cfg_(cfg) {}

  Action next(ProgramContext& ctx) override {
    if (sleeping_next_) {
      sleeping_next_ = false;
      const double mean_us = cfg_.mean_interval.us();
      return Action::sleep_for(
          Duration::micros_f(ctx.rng.exponential(mean_us)));
    }
    sleeping_next_ = true;
    return Action::compute(
        ctx.rng.normal_duration(cfg_.burst_mean, cfg_.burst_stdev,
                                Duration::micros(10)),
        "kthread");
  }

  std::unique_ptr<Program> clone(CloneMap& m) const override {
    auto* raw = new BackgroundDaemon(*this);
    m.add_range(this, raw, sizeof(BackgroundDaemon));
    return std::unique_ptr<Program>(raw);
  }

  void hash_state(StateHasher& h) const override {
    h.str("bg_daemon");
    h.dur(cfg_.mean_interval);
    h.dur(cfg_.burst_mean);
    h.dur(cfg_.burst_stdev);
    h.boolean(sleeping_next_);
  }

 private:
  BackgroundLoad cfg_;
  bool sleeping_next_ = true;
};

}  // namespace

Kernel::Kernel(MachineSpec spec, std::unique_ptr<Scheduler> sched,
               std::uint64_t seed, trace::RoundTrace* trace)
    : spec_(std::move(spec)),
      sched_(std::move(sched)),
      rng_(seed),
      trace_(trace) {
  TOCTTOU_CHECK(spec_.n_cpus >= 1, "machine needs at least one CPU");
  TOCTTOU_CHECK(sched_ != nullptr, "kernel needs a scheduler");
  cpus_.resize(static_cast<std::size_t>(spec_.n_cpus));
  sched_->init(spec_.n_cpus);
  allowed_scratch_.reserve(static_cast<std::size_t>(spec_.n_cpus));
  idle_scratch_.reserve(static_cast<std::size_t>(spec_.n_cpus));
}

void Kernel::reset(MachineSpec spec, std::unique_ptr<Scheduler> sched,
                   std::uint64_t seed, trace::RoundTrace* trace) {
  TOCTTOU_CHECK(spec.n_cpus >= 1, "machine needs at least one CPU");
  TOCTTOU_CHECK(sched != nullptr, "kernel needs a scheduler");
  spec_ = std::move(spec);
  sched_ = std::move(sched);
  rng_ = Rng(seed);
  trace_ = trace;
  faults_ = nullptr;
  metrics_ = nullptr;
  sync_ = nullptr;
  queue_.reset();
  procs_.clear();  // keeps the table's vector capacity
  cpus_.assign(static_cast<std::size_t>(spec_.n_cpus), CpuState{});
  background_started_ = false;
  sched_->init(spec_.n_cpus);
  allowed_scratch_.reserve(static_cast<std::size_t>(spec_.n_cpus));
  idle_scratch_.reserve(static_cast<std::size_t>(spec_.n_cpus));
}

Kernel::~Kernel() = default;

Kernel::Kernel(const Kernel& o, CloneMap& m)
    : spec_(o.spec_),
      rng_(o.rng_),
      trace_(m.remap(o.trace_)),
      faults_(m.remap(o.faults_)),
      metrics_(m.remap(o.metrics_)),
      sync_(m.remap(o.sync_)),
      allowed_scratch_(o.allowed_scratch_),
      idle_scratch_(o.idle_scratch_),
      queue_(o.queue_),
      cpus_(o.cpus_),
      background_started_(o.background_started_) {
  m.add_range(&o, this, sizeof(Kernel));
  // Pass 1: build the process table and register every Process range, so
  // scheduler queues, held semaphores, and program/op internals can remap
  // Process* (and pointers into programs) afterwards.
  procs_.reserve(o.procs_.size());
  for (const auto& src : o.procs_) {
    const Process& q = *src;
    auto proc = std::unique_ptr<Process>(new Process());
    Process& p = *proc;
    m.add_range(&q, &p, sizeof(Process));
    p.pid_ = q.pid_;
    p.name_ = q.name_;
    p.priority_ = q.priority_;
    p.uid_ = q.uid_;
    p.gid_ = q.gid_;
    p.affinity_mask_ = q.affinity_mask_;
    p.kernel_thread_ = q.kernel_thread_;
    p.state_ = q.state_;
    p.cpu_ = q.cpu_;
    p.last_cpu_ = q.last_cpu_;
    p.slice_left_ = q.slice_left_;
    p.cpu_time_ = q.cpu_time_;
    p.preemptions_ = q.preemptions_;
    p.compute_left_ = q.compute_left_;
    p.compute_label_ = q.compute_label_;
    p.op_enter_ = q.op_enter_;
    p.op_path_ = q.op_path_;
    p.op_path2_ = q.op_path2_;
    p.need_resched_ = q.need_resched_;
    p.mapped_libc_pages_ = q.mapped_libc_pages_;
    p.seg_gen_ = q.seg_gen_;
    p.pending_result_ = q.pending_result_;
    p.seg_start_ = q.seg_start_;
    p.seg_kind_ = q.seg_kind_;
    p.seg_len_ = q.seg_len_;
    p.block_start_ = q.block_start_;
    p.block_label_ = q.block_label_;
    p.wake_time_ = q.wake_time_;
    p.wake_pending_ = q.wake_pending_;
    procs_.push_back(std::move(proc));
  }
  sched_ = o.sched_->clone(m);
  // Pass 2: clone every program first (each registers its own range, so
  // service-op output slots pointing into ANY program resolve), then the
  // in-flight ops and held-semaphore lists.
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const Process& q = *o.procs_[i];
    if (q.program_) procs_[i]->program_ = q.program_->clone(m);
  }
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const Process& q = *o.procs_[i];
    Process& p = *procs_[i];
    if (q.op_) p.op_ = q.op_->clone(m);
    p.held_sems_.reserve(q.held_sems_.size());
    for (Semaphore* s : q.held_sems_) p.held_sems_.push_back(m.remap(s));
  }
}

Pid Kernel::spawn(std::unique_ptr<Program> program, SpawnOptions opts) {
  TOCTTOU_CHECK(program != nullptr, "spawn requires a program");
  auto proc = std::unique_ptr<Process>(new Process());
  Process& p = *proc;
  p.pid_ = static_cast<Pid>(procs_.size() + 1);
  p.name_ = opts.name;
  p.priority_ = opts.priority;
  p.uid_ = opts.uid;
  p.gid_ = opts.gid;
  p.affinity_mask_ = opts.affinity_mask;
  p.kernel_thread_ = opts.kernel_thread;
  p.program_ = std::move(program);
  p.slice_left_ = opts.initial_slice.value_or(sched_->fresh_slice(p));
  p.state_ = ProcState::ready;
  procs_.push_back(std::move(proc));
  if (sync_ != nullptr) sync_->proc_start(p.pid_, p.uid_);
  if (metrics_ != nullptr) {
    metrics_->count("kernel.spawns");
    metrics_->gauge_max("kernel.processes_max",
                        static_cast<std::int64_t>(procs_.size()));
  }
  if (trace_) trace_->log.set_process_name(p.pid_, p.name_);
  // Enqueue via an event so that spawning inside program code is safe.
  // Event callbacks capture stable ids only and receive the owning
  // kernel via run_next(this): pending events stay valid across a deep
  // clone of the kernel (the clone replays them against itself).
  queue_.schedule_at(
      now(),
      [pid = p.pid_](void* ctx) {
        auto* k = static_cast<Kernel*>(ctx);
        Process& q = k->process(pid);
        if (q.state_ == ProcState::ready && q.cpu_ == kNoCpu) {
          k->make_ready(q, /*just_woken=*/false);
        }
      },
      EventTag{1, static_cast<std::int64_t>(p.pid_), 0});
  return p.pid_;
}

Process& Kernel::process(Pid pid) {
  TOCTTOU_CHECK(pid >= 1 && pid <= procs_.size(), "unknown pid");
  return *procs_[pid - 1];
}

void Kernel::hash_state(StateHasher& h) const {
  if (faults_ != nullptr) h.mark_unhashable();
  // Canonicalize pending events against current process state: a
  // segment-end event (kind 7) is live only while its generation
  // matches the process's seg_gen_ and the process is still running —
  // otherwise on_segment_end drops it on delivery, so the entry is a
  // timestamped no-op and must not distinguish states. The generation
  // counter's absolute value is scheduling history (it drifts when one
  // schedule splits a segment another didn't), so live entries hash as
  // (kind, pid) with validity implied rather than the raw counter.
  queue_.hash_state(h, [this](StateHasher& hh, const sim::EventTag& tag) {
    if (tag.kind == 7) {
      const auto& p = *procs_[static_cast<std::size_t>(tag.a) - 1];
      if (p.state_ != ProcState::running ||
          static_cast<std::uint64_t>(tag.b) != p.seg_gen_) {
        return false;
      }
      hh.u32(tag.kind);
      hh.i64(tag.a);
      return true;
    }
    hh.u32(tag.kind);
    hh.i64(tag.a);
    hh.i64(tag.b);
    return true;
  });
  rng_.hash_state(h);
  h.u64(procs_.size());
  for (const auto& p : procs_) p->hash_state(h);
  h.u64(cpus_.size());
  // busy_since is accounting only (written at dispatch, read by
  // nothing); like Process::cpu_time_ it would pin transient history
  // into the digest forever, so it is excluded.
  for (const CpuState& c : cpus_) h.u64(c.running);
  h.boolean(background_started_);
  sched_->hash_state(h);
}

const Process& Kernel::process(Pid pid) const {
  TOCTTOU_CHECK(pid >= 1 && pid <= procs_.size(), "unknown pid");
  return *procs_[pid - 1];
}

std::size_t Kernel::live_user_processes() const {
  std::size_t n = 0;
  for (const auto& p : procs_) {
    if (!p->kernel_thread_ && p->state_ != ProcState::exited) ++n;
  }
  return n;
}

Pid Kernel::running_on(CpuId cpu) const {
  TOCTTOU_CHECK(cpu >= 0 && cpu < spec_.n_cpus, "bad cpu id");
  return cpus_[static_cast<std::size_t>(cpu)].running;
}

bool Kernel::run_until(const std::function<bool()>& stop, SimTime limit) {
  while (true) {
    if (stop()) return true;
    if (queue_.empty()) return false;
    if (queue_.peek_time() > limit) return false;
    queue_.run_next(this);
  }
}

bool Kernel::run_to_exit(SimTime limit) {
  return run_until([this] { return live_user_processes() == 0; }, limit);
}

void Kernel::mark(Pid pid, std::string label, std::string detail) {
  if (!trace_ || !trace_->log_events) return;
  trace::TraceEvent ev;
  ev.begin = ev.end = now();
  ev.pid = pid;
  ev.cpu = process(pid).cpu_;
  ev.category = trace::Category::marker;
  ev.label = std::move(label);
  ev.detail = std::move(detail);
  trace_->log.add(std::move(ev));
}

void Kernel::start_background_load() {
  TOCTTOU_CHECK(!background_started_, "background load already started");
  background_started_ = true;
  if (!spec_.background.enabled) return;
  for (int c = 0; c < spec_.n_cpus; ++c) {
    SpawnOptions opts;
    opts.name = strfmt("kthread/%d", c);
    opts.priority = spec_.background.priority;
    opts.kernel_thread = true;
    opts.affinity_mask = 1ull << c;
    spawn(std::make_unique<BackgroundDaemon>(spec_.background), opts);
  }
}

// ---------------------------------------------------------------------------
// Ready / dispatch
// ---------------------------------------------------------------------------

void Kernel::fill_allowed_cpus(const Process& p,
                               std::vector<CpuId>* out) const {
  out->clear();
  for (int c = 0; c < spec_.n_cpus; ++c) {
    if (p.affinity_mask_ & (1ull << c)) out->push_back(c);
  }
}

void Kernel::fill_idle_allowed_cpus(const Process& p,
                                    std::vector<CpuId>* out) const {
  out->clear();
  for (int c = 0; c < spec_.n_cpus; ++c) {
    if ((p.affinity_mask_ & (1ull << c)) &&
        cpus_[static_cast<std::size_t>(c)].running == kNoPid) {
      out->push_back(c);
    }
  }
}

void Kernel::make_ready(Process& p, bool just_woken) {
  TOCTTOU_CHECK(p.state_ == ProcState::ready, "make_ready on non-ready proc");
  fill_allowed_cpus(p, &allowed_scratch_);
  TOCTTOU_CHECK(!allowed_scratch_.empty(),
                "process affinity excludes every CPU");
  fill_idle_allowed_cpus(p, &idle_scratch_);
  const CpuId cpu = sched_->place(p, idle_scratch_, allowed_scratch_);
  sched_->enqueue(p, cpu, /*front=*/false);
  if (metrics_ != nullptr) {
    const auto depth =
        static_cast<std::int64_t>(sched_->queue_depth(cpu));
    metrics_->observe("sched.runqueue_depth", depth);
    metrics_->gauge_max("sched.runqueue_depth_max", depth);
  }
  auto& cs = cpus_[static_cast<std::size_t>(cpu)];
  if (cs.running == kNoPid) {
    dispatch(cpu);
    return;
  }
  {
    Process& running = process(cs.running);
    // Wakeups preempt per policy; newly spawned tasks preempt only on
    // strictly higher priority.
    const bool preempts = just_woken
                              ? sched_->should_preempt(p, running)
                              : p.priority_ > running.priority_;
    if (preempts) {
      if (running.seg_kind_ == Process::SegKind::user_compute) {
        // User mode is preemptible immediately.
        const Duration elapsed = now() - running.seg_start_;
        ++running.seg_gen_;  // invalidate the scheduled segment-end event
        charge(running, elapsed);
        trace_segment(running, trace::Category::compute,
                      running.compute_label_, running.seg_start_, now());
        running.compute_left_ -= elapsed;
        if (running.compute_left_ < Duration::zero()) {
          running.compute_left_ = Duration::zero();
        }
        running.seg_kind_ = Process::SegKind::none;
        preempt(running, /*requeue_front=*/true);
      } else {
        // Kernel mode: defer to the next safe point.
        running.need_resched_ = true;
      }
    }
  }
}

void Kernel::dispatch(CpuId cpu) {
  auto& cs = cpus_[static_cast<std::size_t>(cpu)];
  if (cs.running != kNoPid) return;
  Process* p = sched_->pick_next(cpu);
  bool stolen = false;
  if (p == nullptr) {
    p = sched_->steal(cpu);  // idle balancing
    stolen = (p != nullptr);
  }
  if (p == nullptr) return;
  TOCTTOU_CHECK(p->state_ == ProcState::ready, "picked a non-ready process");
  if (metrics_ != nullptr) {
    metrics_->count("sched.context_switches");
    if (stolen) metrics_->count("sched.steals");
  }
  if (p->wake_pending_) {
    p->wake_pending_ = false;
    if (metrics_ != nullptr) {
      metrics_->observe("kernel.wakeup_latency_ns",
                        (now() - p->wake_time_).ns());
    }
  }
  p->state_ = ProcState::running;
  p->cpu_ = cpu;
  p->last_cpu_ = cpu;
  cs.running = p->pid_;
  cs.busy_since = now();
  if (p->slice_left_ <= Duration::zero()) {
    p->slice_left_ = sched_->fresh_slice(*p);
  }
  if (spec_.context_switch_cost > Duration::zero()) {
    begin_segment(*p, Process::SegKind::ctxsw,
                  spec_.effective(spec_.context_switch_cost, rng_), "ctxsw");
  } else {
    continue_process(*p);
  }
}

void Kernel::free_cpu(Process& p) {
  if (p.cpu_ == kNoCpu) return;
  auto& cs = cpus_[static_cast<std::size_t>(p.cpu_)];
  TOCTTOU_CHECK(cs.running == p.pid_, "cpu/process bookkeeping mismatch");
  cs.running = kNoPid;
  const CpuId cpu = p.cpu_;
  p.cpu_ = kNoCpu;
  dispatch(cpu);
}

void Kernel::preempt(Process& p, bool requeue_front) {
  TOCTTOU_CHECK(p.state_ == ProcState::running, "preempt on non-running proc");
  ++p.preemptions_;
  if (metrics_ != nullptr) metrics_->count("sched.preemptions");
  p.need_resched_ = false;
  p.state_ = ProcState::ready;
  const CpuId cpu = p.cpu_;
  auto& cs = cpus_[static_cast<std::size_t>(cpu)];
  cs.running = kNoPid;
  p.cpu_ = kNoCpu;
  if (p.slice_left_ <= Duration::zero()) {
    p.slice_left_ = sched_->fresh_slice(p);
  }
  // A task preempted by a wakeup resumes at the head of its priority
  // level; a task whose slice expired goes to the tail.
  sched_->enqueue(p, cpu, requeue_front);
  dispatch(cpu);
}

// ---------------------------------------------------------------------------
// Action execution
// ---------------------------------------------------------------------------

void Kernel::continue_process(Process& p) {
  if (p.state_ != ProcState::running) return;
  if (p.need_resched_) {
    preempt(p, /*requeue_front=*/true);
    return;
  }
  if (p.op_) {
    advance_service(p);
    return;
  }
  if (p.compute_left_ > Duration::zero()) {
    // Resume an interrupted computation; cap the segment at the slice.
    const Duration seg = (p.slice_left_ > Duration::zero())
                             ? min(p.compute_left_, p.slice_left_)
                             : p.compute_left_;
    begin_segment(p, Process::SegKind::user_compute, seg, p.compute_label_);
    return;
  }
  start_next_action(p);
}

void Kernel::start_next_action(Process& p) {
  while (true) {
    if (p.state_ != ProcState::running) return;
    if (p.need_resched_) {
      preempt(p, /*requeue_front=*/true);
      return;
    }
    ProgramContext ctx{*this, p, rng_, now()};
    Action a = p.program_->next(ctx);
    switch (a.kind) {
      case Action::Kind::compute: {
        p.compute_left_ = spec_.effective(a.dur, rng_);
        p.compute_label_ = a.label.empty() ? "comp" : a.label;
        if (p.compute_left_ <= Duration::zero()) continue;
        const Duration seg = (p.slice_left_ > Duration::zero())
                                 ? min(p.compute_left_, p.slice_left_)
                                 : p.compute_left_;
        begin_segment(p, Process::SegKind::user_compute, seg,
                      p.compute_label_);
        return;
      }
      case Action::Kind::service: {
        p.op_ = std::move(a.op);
        // Harvest the op's declared pathnames for the in-flight conflict
        // relation (explore/dpor.h): fill_record only writes fields it
        // has resolved, and at entry that is exactly the paths the op
        // was constructed with.
        trace::SyscallRecord probe;
        p.op_->fill_record(probe);
        p.op_path_ = std::move(probe.path);
        p.op_path2_ = std::move(probe.path2);
        const int page = p.op_->libc_page();
        if (page != ServiceOp::kNoLibcPage &&
            !p.mapped_libc_pages_.contains(page)) {
          p.mapped_libc_pages_.insert(page);
          begin_segment(p, Process::SegKind::trap,
                        spec_.effective(spec_.libc_fault_cost, rng_), "trap");
          return;
        }
        p.op_enter_ = now();
        if (sync_ != nullptr) sync_->sc_enter(p.pid_);
        advance_service(p);
        return;
      }
      case Action::Kind::sleep_for: {
        p.state_ = ProcState::sleeping;
        p.block_start_ = now();
        const Pid pid = p.pid_;
        queue_.schedule_at(
            now() + a.dur,
            [pid](void* k) {
              static_cast<Kernel*>(k)->wake(pid, /*from_io=*/false);
            },
            EventTag{2, static_cast<std::int64_t>(pid), 0});
        free_cpu(p);
        return;
      }
      case Action::Kind::wait_flag: {
        TOCTTOU_CHECK(a.flag != nullptr, "wait_flag needs a flag");
        if (a.flag->set_) {
          // Fast path still observes the setter's publication.
          if (sync_ != nullptr) sync_->flag_wake(p.pid_, a.flag->name());
          continue;
        }
        p.state_ = ProcState::blocked_flag;
        p.block_start_ = now();
        p.block_label_ = "flag:" + a.flag->name();
        a.flag->waiters_.push_back(p.pid_);
        free_cpu(p);
        return;
      }
      case Action::Kind::set_flag: {
        TOCTTOU_CHECK(a.flag != nullptr, "set_flag needs a flag");
        a.flag->set_ = true;
        if (sync_ != nullptr) sync_->flag_set(p.pid_, a.flag->name());
        for (Pid w : a.flag->waiters_) {
          // Blocked waiters receive the publication at set time; they
          // perform no events before their wakeup runs, so logging the
          // wake here keeps the append order causal.
          if (sync_ != nullptr) sync_->flag_wake(w, a.flag->name());
          queue_.schedule_at(
              now() + spec_.wakeup_latency,
              [w](void* k) {
                static_cast<Kernel*>(k)->wake(w, /*from_io=*/false);
              },
              EventTag{3, static_cast<std::int64_t>(w), 0});
        }
        a.flag->waiters_.clear();
        continue;
      }
      case Action::Kind::mark: {
        mark(p.pid_, a.label);
        continue;
      }
      case Action::Kind::exit_proc: {
        handle_exit(p);
        return;
      }
    }
  }
}

void Kernel::advance_service(Process& p) {
  TOCTTOU_CHECK(p.op_ != nullptr, "advance_service without an op");
  while (true) {
    if (p.state_ != ProcState::running) return;
    ServiceContext ctx{*this, p, rng_, now()};
    const Step step = p.op_->advance(ctx);
    switch (step.kind) {
      case Step::Kind::work: {
        begin_segment(p, Process::SegKind::kernel_work,
                      spec_.effective(step.dur, rng_),
                      std::string(p.op_->name()));
        return;
      }
      case Step::Kind::acquire: {
        TOCTTOU_CHECK(step.sem != nullptr, "acquire needs a semaphore");
        Semaphore& sem = *step.sem;
        if (sem.owner_ == kNoPid) {
          sem.owner_ = p.pid_;
          p.held_sems_.push_back(&sem);
          if (sync_ != nullptr) sync_->sem_acquire(p.pid_, sem.name_);
          continue;  // acquired without blocking
        }
        TOCTTOU_CHECK(sem.owner_ != p.pid_, "semaphore is not recursive");
        block_on_sem(p, sem);
        return;
      }
      case Step::Kind::release: {
        TOCTTOU_CHECK(step.sem != nullptr, "release needs a semaphore");
        release_sem(p, *step.sem);
        continue;
      }
      case Step::Kind::block_io: {
        p.state_ = ProcState::blocked_io;
        p.block_start_ = now();
        p.block_label_ = std::string(p.op_->name());
        const Pid pid = p.pid_;
        queue_.schedule_at(
            now() + step.dur,
            [pid](void* k) {
              static_cast<Kernel*>(k)->wake(pid, /*from_io=*/true);
            },
            EventTag{4, static_cast<std::int64_t>(pid), 0});
        free_cpu(p);
        return;
      }
      case Step::Kind::done: {
        if (faults_ != nullptr) {
          const Duration spike =
              faults_->completion_spike(p.op_->name(), p.pid_);
          if (spike > Duration::zero()) {
            // Hold the result; the syscall returns only after the spike,
            // so the journal exit time reflects the injected latency.
            p.pending_result_ = step.result;
            begin_segment(p, Process::SegKind::fault_spike, spike,
                          "fault-spike");
            return;
          }
        }
        finish_syscall(p, step.result);
        return;
      }
    }
  }
}

void Kernel::finish_syscall(Process& p, Errno result) {
  complete_service(p, result);
  if (faults_ != nullptr && faults_->kill_at_syscall_return(p.pid_)) {
    mark(p.pid_, "fault-kill");
    handle_exit(p);
    return;
  }
  // Syscall returned; pick the next action (checks need_resched).
  start_next_action(p);
}

void Kernel::complete_service(Process& p, Errno result) {
  if (trace_) {
    trace::SyscallRecord rec;
    rec.pid = p.pid_;
    rec.name = std::string(p.op_->name());
    rec.enter = p.op_enter_;
    rec.exit = now();
    rec.result = result;
    p.op_->fill_record(rec);
    trace_->journal.add(std::move(rec));
  }
  if (metrics_ != nullptr) {
    metrics_->count("kernel.syscalls");
    metrics_->count("kernel.syscalls." + std::string(p.op_->name()));
    metrics_->observe("kernel.syscall_ns", (now() - p.op_enter_).ns());
  }
  if (sync_ != nullptr) sync_->sc_exit(p.pid_);
  p.op_.reset();
  p.op_path_.clear();
  p.op_path2_.clear();
}

void Kernel::block_on_sem(Process& p, Semaphore& sem) {
  p.state_ = ProcState::blocked_sem;
  p.block_start_ = now();
  p.block_label_ = "sem:" + sem.name_;
  p.need_resched_ = false;
  sem.waiters_.push_back(p.pid_);
  free_cpu(p);
}

void Kernel::release_sem(Process& p, Semaphore& sem) {
  TOCTTOU_CHECK(sem.owner_ == p.pid_, "releasing a semaphore not held");
  auto it = std::find(p.held_sems_.begin(), p.held_sems_.end(), &sem);
  TOCTTOU_CHECK(it != p.held_sems_.end(), "held-semaphore bookkeeping broken");
  p.held_sems_.erase(it);
  if (sync_ != nullptr) sync_->sem_release(p.pid_, sem.name_);
  if (sem.waiters_.empty()) {
    sem.owner_ = kNoPid;
    return;
  }
  // Direct hand-off preserves FIFO order and prevents barging: the next
  // waiter owns the semaphore from this instant even though it will only
  // run after the wakeup latency.
  const Pid next = sem.waiters_.front();
  sem.waiters_.pop_front();
  sem.owner_ = next;
  Process& w = process(next);
  w.held_sems_.push_back(&sem);
  // The handoff is the happens-before edge: next owns the semaphore
  // from this instant, so its acquire is ordered here, not at wakeup.
  if (sync_ != nullptr) sync_->sem_acquire(next, sem.name_);
  queue_.schedule_at(
      now() + spec_.wakeup_latency,
      [next](void* k) {
        static_cast<Kernel*>(k)->wake(next, /*from_io=*/false);
      },
      EventTag{5, static_cast<std::int64_t>(next), 0});
}

void Kernel::wake(Pid pid, bool from_io, bool faultable) {
  Process& p = process(pid);
  if (p.state_ == ProcState::exited) return;
  if (faultable && faults_ != nullptr) {
    Duration delay = Duration::zero();
    switch (faults_->wakeup_fault(pid, &delay)) {
      case FaultInjector::WakeFault::drop:
        // The wakeup is lost. Each blocked process has exactly one
        // pending wake, so it stays blocked; a victim deadlocked this
        // way surfaces as a time-limit anomaly — a modeled outcome.
        return;
      case FaultInjector::WakeFault::delay:
        // Redeliver later; faultable=false so the late wake cannot be
        // re-faulted into an unbounded delay chain.
        queue_.schedule_at(
            now() + delay,
            [pid, from_io](void* k) {
              static_cast<Kernel*>(k)->wake(pid, from_io, /*faultable=*/false);
            },
            EventTag{6, static_cast<std::int64_t>(pid), from_io ? 1 : 0});
        return;
      case FaultInjector::WakeFault::none:
        break;
    }
  }
  trace::Category cat = trace::Category::sem_wait;
  bool traced = true;
  switch (p.state_) {
    case ProcState::blocked_sem:
      cat = trace::Category::sem_wait;
      break;
    case ProcState::blocked_io:
      cat = trace::Category::io_wait;
      break;
    case ProcState::blocked_flag:
      cat = trace::Category::sem_wait;
      break;
    case ProcState::sleeping:
      traced = false;
      break;
    default:
      TOCTTOU_CHECK(false, "wake on a process that is not blocked");
  }
  (void)from_io;
  if (traced && trace_ && trace_->log_events) {
    trace::TraceEvent ev;
    ev.begin = p.block_start_;
    ev.end = now();
    ev.pid = p.pid_;
    ev.cpu = kNoCpu;
    ev.category = cat;
    ev.label = p.block_label_;
    trace_->log.add(std::move(ev));
  }
  if (metrics_ != nullptr) {
    const std::int64_t waited = (now() - p.block_start_).ns();
    switch (p.state_) {
      case ProcState::blocked_sem:
        // block_label_ is "sem:<name>"; keyed per inode semaphore.
        metrics_->observe("fs.sem_wait_ns", waited);
        metrics_->observe("fs.sem_wait_ns." + p.block_label_.substr(4),
                          waited);
        break;
      case ProcState::blocked_io:
        metrics_->observe("kernel.io_wait_ns", waited);
        break;
      case ProcState::blocked_flag:
        metrics_->observe("kernel.flag_wait_ns", waited);
        break;
      default:
        break;  // sleeping: a timer, not a wait the paper's tracer counted
    }
    p.wake_pending_ = true;
    p.wake_time_ = now();
  }
  p.state_ = ProcState::ready;
  make_ready(p, /*just_woken=*/true);
}

void Kernel::handle_exit(Process& p) {
  TOCTTOU_CHECK(p.held_sems_.empty(),
                "process exited while holding a semaphore");
  if (sync_ != nullptr) sync_->proc_exit(p.pid_);
  p.state_ = ProcState::exited;
  ++p.seg_gen_;
  free_cpu(p);
}

// ---------------------------------------------------------------------------
// Segments (timed spans of CPU execution)
// ---------------------------------------------------------------------------

void Kernel::begin_segment(Process& p, Process::SegKind kind,
                           Duration effective, std::string label) {
  if (effective < Duration::zero()) effective = Duration::zero();
  p.seg_kind_ = kind;
  p.seg_start_ = now();
  p.seg_len_ = effective;
  p.compute_label_ =
      (kind == Process::SegKind::user_compute) ? label : p.compute_label_;
  if (kind != Process::SegKind::user_compute) p.block_label_ = label;
  const std::uint64_t gen = ++p.seg_gen_;
  const Pid pid = p.pid_;
  queue_.schedule_at(
      now() + effective,
      [pid, gen](void* k) {
        static_cast<Kernel*>(k)->on_segment_end(pid, gen);
      },
      EventTag{7, static_cast<std::int64_t>(pid),
               static_cast<std::int64_t>(gen)});
}

void Kernel::on_segment_end(Pid pid, std::uint64_t gen) {
  Process& p = process(pid);
  if (gen != p.seg_gen_ || p.state_ != ProcState::running) return;
  finish_segment(p, p.seg_len_);
}

void Kernel::finish_segment(Process& p, Duration ran) {
  const Process::SegKind kind = p.seg_kind_;
  p.seg_kind_ = Process::SegKind::none;
  charge(p, ran);
  switch (kind) {
    case Process::SegKind::user_compute: {
      trace_segment(p, trace::Category::compute, p.compute_label_,
                    p.seg_start_, now());
      p.compute_left_ -= ran;
      if (p.compute_left_ < Duration::zero()) {
        p.compute_left_ = Duration::zero();
      }
      // Time-slice expiry is checked at segment boundaries (user mode).
      if (p.slice_left_ <= Duration::zero()) {
        if (sched_->should_yield_on_expiry(p, p.cpu_)) {
          preempt(p, /*requeue_front=*/false);
          return;
        }
        p.slice_left_ = sched_->fresh_slice(p);
      }
      continue_process(p);
      return;
    }
    case Process::SegKind::trap: {
      trace_segment(p, trace::Category::trap, "trap", p.seg_start_, now());
      TOCTTOU_CHECK(p.op_ != nullptr, "trap must precede a service op");
      p.op_enter_ = now();
      if (sync_ != nullptr) sync_->sc_enter(p.pid_);
      if (p.need_resched_) {
        preempt(p, /*requeue_front=*/true);
        return;
      }
      advance_service(p);
      return;
    }
    case Process::SegKind::kernel_work: {
      trace_segment(p, trace::Category::syscall, p.block_label_, p.seg_start_,
                    now());
      // Kernel work steps are non-preemptible; honor deferred preemption
      // and slice expiry at this safe point.
      if (p.need_resched_) {
        preempt(p, /*requeue_front=*/true);
        return;
      }
      if (p.slice_left_ <= Duration::zero()) {
        if (sched_->should_yield_on_expiry(p, p.cpu_)) {
          preempt(p, /*requeue_front=*/false);
          return;
        }
        p.slice_left_ = sched_->fresh_slice(p);
      }
      advance_service(p);
      return;
    }
    case Process::SegKind::ctxsw: {
      continue_process(p);
      return;
    }
    case Process::SegKind::fault_spike: {
      trace_segment(p, trace::Category::syscall, "fault-spike", p.seg_start_,
                    now());
      finish_syscall(p, p.pending_result_);
      return;
    }
    case Process::SegKind::none:
      TOCTTOU_CHECK(false, "segment end without an active segment");
  }
}

void Kernel::charge(Process& p, Duration ran) {
  p.cpu_time_ += ran;
  p.slice_left_ -= ran;
}

void Kernel::trace_segment(const Process& p, trace::Category cat,
                           const std::string& label, SimTime begin,
                           SimTime end) {
  if (!trace_ || !trace_->log_events || end == begin) return;
  trace::TraceEvent ev;
  ev.begin = begin;
  ev.end = end;
  ev.pid = p.pid_;
  ev.cpu = p.cpu_;
  ev.category = cat;
  ev.label = label;
  trace_->log.add(std::move(ev));
}

}  // namespace tocttou::sim
