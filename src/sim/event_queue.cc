#include "tocttou/sim/event_queue.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "tocttou/common/error.h"

namespace tocttou::sim {

namespace {

// Process-wide default, set before campaigns start (bench_core_hotpath
// toggles it between serial measurement passes); atomic so concurrent
// campaign workers constructing kernels read it race-free.
std::atomic<int> g_default_impl{static_cast<int>(EventQueue::Impl::pooled)};

}  // namespace

void EventQueue::set_default_impl(Impl impl) {
  g_default_impl.store(static_cast<int>(impl), std::memory_order_relaxed);
}

EventQueue::Impl EventQueue::default_impl() {
  return static_cast<Impl>(g_default_impl.load(std::memory_order_relaxed));
}

EventQueue::EventQueue() : impl_(default_impl()) {
  if (impl_ == Impl::pooled) heap_.reserve(64);
}

void EventQueue::reset() {
  heap_.clear();  // keeps capacity — the point of reusing the queue
  while (!legacy_.empty()) legacy_.pop();
  now_ = SimTime::origin();
  next_seq_ = 0;
  executed_ = 0;
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t l = 2 * i + 1;
    if (l >= n) break;
    const std::size_t r = l + 1;
    std::size_t best = (r < n && earlier(heap_[r], heap_[l])) ? r : l;
    if (!earlier(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void EventQueue::schedule_at(SimTime t, Callback cb) {
  schedule_at(t, std::move(cb), EventTag{});
}

void EventQueue::schedule_at(SimTime t, Callback cb, EventTag tag) {
  TOCTTOU_CHECK(t >= now_, "cannot schedule an event in the past");
  if (impl_ == Impl::legacy) {
    legacy_.push(LegacyEntry{
        t, next_seq_++,
        std::function<void(void*)>([cb](void* ctx) mutable { cb(ctx); })});
    return;
  }
  heap_.push_back(Entry{t, next_seq_++, tag, cb});
  sift_up(heap_.size() - 1);
}

void EventQueue::hash_state(StateHasher& h) const {
  hash_state(h, [](StateHasher& hh, const EventTag& tag) {
    hh.u32(tag.kind);
    hh.i64(tag.a);
    hh.i64(tag.b);
    return true;
  });
}

void EventQueue::hash_state(
    StateHasher& h,
    const std::function<bool(StateHasher&, const EventTag&)>& canon) const {
  h.time(now_);
  if (impl_ == Impl::legacy) {
    // Legacy entries carry no tag storage; hashing them would silently
    // omit pending work.
    if (!legacy_.empty()) h.mark_unhashable();
    return;
  }
  // Heap layout is scheduling-history-dependent; (t, seq) order is the
  // canonical firing order.
  std::vector<const Entry*> order;
  order.reserve(heap_.size());
  for (const Entry& e : heap_) order.push_back(&e);
  std::sort(order.begin(), order.end(), [](const Entry* a, const Entry* b) {
    return earlier(*a, *b);
  });
  // Classify first so the hashed count covers only live entries.
  std::vector<const Entry*> live;
  live.reserve(order.size());
  for (const Entry* e : order) {
    StateHasher probe;  // dry-run classification, discard the bytes
    if (canon(probe, e->tag)) live.push_back(e);
  }
  h.u64(live.size());
  for (const Entry* e : live) {
    if (e->tag.kind == 0) h.mark_unhashable();
    h.time(e->t);
    canon(h, e->tag);
  }
}

bool EventQueue::run_next(void* ctx) {
  if (impl_ == Impl::legacy) {
    if (legacy_.empty()) return false;
    // priority_queue::top() is const; move out via const_cast is
    // UB-adjacent, so copy the callback handle instead.
    LegacyEntry e = legacy_.top();
    legacy_.pop();
    now_ = e.t;
    ++executed_;
    e.cb(ctx);
    return true;
  }
  if (heap_.empty()) return false;
  // Entry is trivially copyable: "moving" the root out is a small memcpy
  // with no allocator traffic, unlike the legacy std::function copy.
  Entry e = heap_.front();
  const Entry back = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_.front() = back;
    sift_down(0);
  }
  now_ = e.t;
  ++executed_;
  e.cb(ctx);
  return true;
}

SimTime EventQueue::peek_time() const {
  if (impl_ == Impl::legacy) {
    return legacy_.empty() ? SimTime::never() : legacy_.top().t;
  }
  return heap_.empty() ? SimTime::never() : heap_.front().t;
}

}  // namespace tocttou::sim
