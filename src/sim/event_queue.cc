#include "tocttou/sim/event_queue.h"

#include <utility>

#include "tocttou/common/error.h"

namespace tocttou::sim {

void EventQueue::schedule_at(SimTime t, Callback cb) {
  TOCTTOU_CHECK(t >= now_, "cannot schedule an event in the past");
  heap_.push(Entry{t, next_seq_++, std::move(cb)});
}

bool EventQueue::run_next() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the callback handle instead (std::function copy is cheap
  // relative to simulation work and keeps the code obviously correct).
  Entry e = heap_.top();
  heap_.pop();
  now_ = e.t;
  ++executed_;
  e.cb();
  return true;
}

SimTime EventQueue::peek_time() const {
  return heap_.empty() ? SimTime::never() : heap_.top().t;
}

}  // namespace tocttou::sim
