#include "tocttou/sim/machine.h"

#include <cmath>

namespace tocttou::sim {

Duration NoiseModel::inflate(Duration nominal, Rng& rng) const {
  if (nominal <= Duration::zero()) return Duration::zero();
  double ns = static_cast<double>(nominal.ns());
  if (rel_sigma > 0.0) {
    const double mult = std::max(0.25, rng.normal(1.0, rel_sigma));
    ns *= mult;
  }
  if (tick_period > Duration::zero() &&
      (tick_cost_mean > Duration::zero() || softirq_prob > 0.0)) {
    const double expected_ticks = ns / static_cast<double>(tick_period.ns());
    auto hits = static_cast<int>(expected_ticks);
    if (rng.bernoulli(expected_ticks - static_cast<double>(hits))) ++hits;
    for (int i = 0; i < hits; ++i) {
      ns += static_cast<double>(
          rng.normal_duration(tick_cost_mean, tick_cost_stdev).ns());
      if (rng.bernoulli(softirq_prob)) {
        ns += static_cast<double>(
            rng.normal_duration(softirq_cost_mean, softirq_cost_stdev).ns());
      }
    }
  }
  return Duration::nanos(static_cast<std::int64_t>(ns));
}

NoiseModel NoiseModel::none() {
  NoiseModel n;
  n.rel_sigma = 0.0;
  n.tick_cost_mean = Duration::zero();
  n.tick_cost_stdev = Duration::zero();
  n.softirq_prob = 0.0;
  return n;
}

}  // namespace tocttou::sim
