#include "tocttou/sim/process.h"

#include "tocttou/sim/semaphore.h"

namespace tocttou::sim {

const char* to_string(ProcState s) {
  switch (s) {
    case ProcState::ready:
      return "ready";
    case ProcState::running:
      return "running";
    case ProcState::blocked_sem:
      return "blocked_sem";
    case ProcState::blocked_io:
      return "blocked_io";
    case ProcState::blocked_flag:
      return "blocked_flag";
    case ProcState::sleeping:
      return "sleeping";
    case ProcState::exited:
      return "exited";
  }
  return "?";
}

void Process::hash_state(StateHasher& h) const {
  h.u64(pid_);
  // An exited process is inert: the kernel never dispatches it again and
  // no future scheduling or VFS behavior can read its residual fields
  // (they are frozen mid-history — op paths, segment stamps, labels —
  // and two schedules that reach the same live state routinely disagree
  // on them). Hash only the fact of the exit.
  if (state_ == ProcState::exited) {
    h.u32(static_cast<std::uint32_t>(state_));
    return;
  }
  h.str(name_);
  h.i64(priority_);
  h.u64(uid_);
  h.u64(gid_);
  h.u64(affinity_mask_);
  h.boolean(kernel_thread_);
  h.u32(static_cast<std::uint32_t>(state_));
  h.i64(last_cpu_);
  h.dur(slice_left_);
  // Liveness-conditional hashing: a field is digested only while some
  // future read can observe its value. Stale copies (overwritten before
  // the next read) are exactly what keeps observably identical states
  // from colliding, so they are canonicalized away:
  //  - cpu_time_, preemptions_: pure accounting, read only by
  //    tests/metrics, never by scheduling or programs. A forced
  //    preemption bumps them once and nothing ever resets them.
  //  - cpu_: meaningful only while running (free_cpu reads it);
  //    last_cpu_ stays hashed because schedulers read it for affinity.
  //  - seg_start_/seg_kind_/seg_len_: read at segment end or
  //    preemption, both of which require state_ == running.
  //  - seg_gen_: its absolute value is never read — only equality with
  //    a pending segment-end event's generation matters, and the event
  //    queue's canonical hash captures that validity bit instead.
  //  - op_enter_: read when the in-flight op completes (journal enter
  //    timestamp, service-time metric); stale once op_ is null.
  //  - block_start_/block_label_/wake_time_: read only by metrics and
  //    trace-event emission, both disabled in explorer leaves
  //    (canonical_explore_config), which is the only context that
  //    consumes these digests.
  if (state_ == ProcState::running) {
    h.i64(cpu_);
    h.time(seg_start_);
    h.u32(static_cast<std::uint32_t>(seg_kind_));
    h.dur(seg_len_);
  }
  h.dur(compute_left_);
  h.str(compute_label_);
  h.str(op_path_);
  h.str(op_path2_);
  h.boolean(need_resched_);
  h.u64(mapped_libc_pages_.size());
  for (int page : mapped_libc_pages_) h.i64(page);
  h.u32(static_cast<std::uint32_t>(pending_result_));
  h.boolean(wake_pending_);
  // Held semaphores by name — inode-semaphore names embed the raw ino,
  // matching the Vfs's raw-ino canonical order.
  h.u64(held_sems_.size());
  for (const Semaphore* s : held_sems_) h.str(s->name());
  h.boolean(op_ != nullptr);
  if (op_) {
    h.time(op_enter_);
    op_->hash_state(h);
  }
  h.boolean(program_ != nullptr);
  if (program_) program_->hash_state(h);
}

}  // namespace tocttou::sim
