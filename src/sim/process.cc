#include "tocttou/sim/process.h"

namespace tocttou::sim {

const char* to_string(ProcState s) {
  switch (s) {
    case ProcState::ready:
      return "ready";
    case ProcState::running:
      return "running";
    case ProcState::blocked_sem:
      return "blocked_sem";
    case ProcState::blocked_io:
      return "blocked_io";
    case ProcState::blocked_flag:
      return "blocked_flag";
    case ProcState::sleeping:
      return "sleeping";
    case ProcState::exited:
      return "exited";
  }
  return "?";
}

}  // namespace tocttou::sim
