#include "tocttou/sim/faults.h"

#include <cerrno>
#include <cstdlib>

#include "tocttou/common/strings.h"

namespace tocttou::sim {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::syscall_error:
      return "error";
    case FaultKind::latency_spike:
      return "spike";
    case FaultKind::wakeup_delay:
      return "wakeup-delay";
    case FaultKind::wakeup_drop:
      return "wakeup-drop";
    case FaultKind::kill_process:
      return "kill";
  }
  return "?";
}

const char* to_string(FaultRole r) {
  switch (r) {
    case FaultRole::any:
      return "any";
    case FaultRole::victim:
      return "victim";
    case FaultRole::attacker:
      return "attacker";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// FaultStats
// ---------------------------------------------------------------------------

void FaultStats::merge(const FaultStats& other) {
  errors_injected += other.errors_injected;
  latency_spikes += other.latency_spikes;
  wakeups_delayed += other.wakeups_delayed;
  wakeups_dropped += other.wakeups_dropped;
  kills += other.kills;
  retries += other.retries;
  invariant_violations += other.invariant_violations;
  degraded_rounds += other.degraded_rounds;
}

std::string FaultStats::summary() const {
  std::string out;
  const auto add = [&out](const char* name, std::uint64_t v) {
    if (v == 0) return;
    if (!out.empty()) out += ' ';
    out += strfmt("%s=%llu", name, static_cast<unsigned long long>(v));
  };
  add("err", errors_injected);
  add("spike", latency_spikes);
  add("wake-delay", wakeups_delayed);
  add("wake-drop", wakeups_dropped);
  add("kill", kills);
  add("retries", retries);
  add("degraded", degraded_rounds);
  add("violations", invariant_violations);
  if (out.empty()) out = "none";
  return "faults[" + out + "]";
}

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

bool FaultPlan::has(FaultKind k) const {
  for (const auto& s : specs) {
    if (s.kind == k) return true;
  }
  return false;
}

bool FaultPlan::inert() const {
  for (const auto& s : specs) {
    if (s.rate > 0.0 || s.nth > 0) return false;
  }
  return true;
}

namespace {

std::vector<std::string> split_on(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

bool parse_double(const std::string& v, double* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double x = std::strtod(v.c_str(), &end);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = x;
  return true;
}

bool parse_u64(const std::string& v, std::uint64_t* out) {
  if (v.empty() || v[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = x;
  return true;
}

bool parse_errno(const std::string& v, Errno* out) {
  if (v == "eintr") *out = Errno::eintr;
  else if (v == "enospc") *out = Errno::enospc;
  else if (v == "eio") *out = Errno::eio;
  else return false;
  return true;
}

bool parse_role(const std::string& v, FaultRole* out) {
  if (v == "any") *out = FaultRole::any;
  else if (v == "victim") *out = FaultRole::victim;
  else if (v == "attacker") *out = FaultRole::attacker;
  else return false;
  return true;
}

bool parse_clause(const std::string& clause, FaultSpec* spec,
                  std::string* err) {
  const auto fields = split_on(clause, ':');
  if (fields.size() < 2) {
    *err = "clause '" + clause + "' needs at least kind:rate";
    return false;
  }
  const std::string& kind = fields[0];
  if (kind == "error") spec->kind = FaultKind::syscall_error;
  else if (kind == "spike") spec->kind = FaultKind::latency_spike;
  else if (kind == "wakeup-delay") spec->kind = FaultKind::wakeup_delay;
  else if (kind == "wakeup-drop") spec->kind = FaultKind::wakeup_drop;
  else if (kind == "kill") spec->kind = FaultKind::kill_process;
  else {
    *err = "unknown fault kind '" + kind + "'";
    return false;
  }
  if (!parse_double(fields[1], &spec->rate) || spec->rate < 0.0 ||
      spec->rate > 1.0) {
    *err = "bad rate '" + fields[1] + "' in '" + clause +
           "' (expected 0..1)";
    return false;
  }
  for (std::size_t i = 2; i < fields.size(); ++i) {
    const std::size_t eq = fields[i].find('=');
    if (eq == std::string::npos) {
      *err = "expected key=value, got '" + fields[i] + "'";
      return false;
    }
    const std::string key = fields[i].substr(0, eq);
    const std::string val = fields[i].substr(eq + 1);
    if (key == "errno") {
      if (spec->kind != FaultKind::syscall_error) {
        *err = "errno= only applies to error clauses";
        return false;
      }
      if (!parse_errno(val, &spec->error)) {
        *err = "unknown errno '" + val + "' (eintr|enospc|eio)";
        return false;
      }
    } else if (key == "op") {
      spec->op = val;
    } else if (key == "path") {
      spec->path_prefix = val;
    } else if (key == "role") {
      if (!parse_role(val, &spec->role)) {
        *err = "unknown role '" + val + "' (victim|attacker|any)";
        return false;
      }
    } else if (key == "nth") {
      if (!parse_u64(val, &spec->nth) || spec->nth == 0) {
        *err = "bad nth '" + val + "' (expected a positive integer)";
        return false;
      }
    } else if (key == "us") {
      std::uint64_t us = 0;
      if (!parse_u64(val, &us)) {
        *err = "bad us '" + val + "' (expected microseconds)";
        return false;
      }
      spec->magnitude = Duration::micros(static_cast<std::int64_t>(us));
    } else {
      *err = "unknown key '" + key + "' in '" + clause + "'";
      return false;
    }
  }
  return true;
}

}  // namespace

bool FaultPlan::parse(const std::string& text, FaultPlan* out,
                      std::string* err) {
  FaultPlan plan;
  std::string local_err;
  if (err == nullptr) err = &local_err;
  if (text.empty()) {
    *err = "empty fault spec";
    return false;
  }
  for (const auto& clause : split_on(text, ',')) {
    FaultSpec spec;
    if (!parse_clause(clause, &spec, err)) return false;
    plan.specs.push_back(std::move(spec));
  }
  *out = std::move(plan);
  return true;
}

std::string FaultPlan::describe() const {
  std::string out;
  for (const auto& s : specs) {
    if (!out.empty()) out += ',';
    out += strfmt("%s:%g", to_string(s.kind), s.rate);
    if (s.kind == FaultKind::syscall_error) {
      out += strfmt(":errno=%s", to_string(s.error));
    }
    if (s.kind == FaultKind::latency_spike ||
        s.kind == FaultKind::wakeup_delay) {
      out += strfmt(":us=%lld", static_cast<long long>(s.magnitude.us()));
    }
    if (!s.op.empty()) out += ":op=" + s.op;
    if (!s.path_prefix.empty()) out += ":path=" + s.path_prefix;
    if (s.role != FaultRole::any) {
      out += strfmt(":role=%s", to_string(s.role));
    }
    if (s.nth > 0) {
      out += strfmt(":nth=%llu", static_cast<unsigned long long>(s.nth));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)),
      rng_(seed),
      occurrences_(plan_.specs.size(), 0) {
  for (const auto& s : plan_.specs) {
    if (s.kind == FaultKind::syscall_error && (s.rate > 0.0 || s.nth > 0)) {
      has_errors_ = true;
    }
    if (s.kind == FaultKind::kill_process) has_kills_ = true;
  }
}

void FaultInjector::set_role(Pid pid, FaultRole role) {
  roles_[pid] = role;
}

bool FaultInjector::role_matches(const FaultSpec& spec, Pid pid) const {
  if (spec.role == FaultRole::any) return true;
  const auto it = roles_.find(pid);
  return it != roles_.end() && it->second == spec.role;
}

bool FaultInjector::decide(std::size_t idx) {
  const FaultSpec& spec = plan_.specs[idx];
  const std::uint64_t seen = ++occurrences_[idx];
  if (spec.nth > 0) return seen == spec.nth;
  // The draw happens for every match (even rate 0) so that the decision
  // sequence is a pure function of the query sequence.
  return rng_.bernoulli(spec.rate);
}

std::optional<Errno> FaultInjector::syscall_error(std::string_view op,
                                                  const std::string& path,
                                                  Pid pid) {
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& s = plan_.specs[i];
    if (s.kind != FaultKind::syscall_error) continue;
    if (!s.op.empty() && s.op != op) continue;
    if (!s.path_prefix.empty() &&
        path.compare(0, s.path_prefix.size(), s.path_prefix) != 0) {
      continue;
    }
    if (!role_matches(s, pid)) continue;
    if (decide(i)) {
      ++stats_.errors_injected;
      return s.error;
    }
  }
  return std::nullopt;
}

Duration FaultInjector::completion_spike(std::string_view op, Pid pid) {
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& s = plan_.specs[i];
    if (s.kind != FaultKind::latency_spike) continue;
    if (!s.op.empty() && s.op != op) continue;
    if (!role_matches(s, pid)) continue;
    if (decide(i)) {
      ++stats_.latency_spikes;
      return s.magnitude;
    }
  }
  return Duration::zero();
}

FaultInjector::WakeFault FaultInjector::wakeup_fault(Pid pid,
                                                     Duration* delay) {
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& s = plan_.specs[i];
    if (s.kind != FaultKind::wakeup_delay &&
        s.kind != FaultKind::wakeup_drop) {
      continue;
    }
    if (!role_matches(s, pid)) continue;
    if (decide(i)) {
      if (s.kind == FaultKind::wakeup_drop) {
        ++stats_.wakeups_dropped;
        return WakeFault::drop;
      }
      ++stats_.wakeups_delayed;
      *delay = s.magnitude;
      return WakeFault::delay;
    }
  }
  return WakeFault::none;
}

bool FaultInjector::kill_at_syscall_return(Pid pid) {
  if (!has_kills_) return false;
  // nth for kills is per process: "kill at its Nth syscall return".
  const std::uint64_t returns = ++syscall_returns_[pid];
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& s = plan_.specs[i];
    if (s.kind != FaultKind::kill_process) continue;
    if (!role_matches(s, pid)) continue;
    bool fire = false;
    if (s.nth > 0) {
      fire = returns == s.nth;
    } else {
      fire = rng_.bernoulli(s.rate);
    }
    if (fire) {
      ++stats_.kills;
      killed_.push_back(pid);
      return true;
    }
  }
  return false;
}

bool FaultInjector::was_killed(Pid pid) const {
  for (const Pid p : killed_) {
    if (p == pid) return true;
  }
  return false;
}

}  // namespace tocttou::sim
