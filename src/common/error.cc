#include "tocttou/common/error.h"

namespace tocttou {

const char* to_string(Errno e) {
  switch (e) {
    case Errno::ok:
      return "OK";
    case Errno::enoent:
      return "ENOENT";
    case Errno::eexist:
      return "EEXIST";
    case Errno::eacces:
      return "EACCES";
    case Errno::eperm:
      return "EPERM";
    case Errno::enotdir:
      return "ENOTDIR";
    case Errno::eisdir:
      return "EISDIR";
    case Errno::eloop:
      return "ELOOP";
    case Errno::ebadf:
      return "EBADF";
    case Errno::einval:
      return "EINVAL";
    case Errno::enotempty:
      return "ENOTEMPTY";
    case Errno::emfile:
      return "EMFILE";
    case Errno::enametoolong:
      return "ENAMETOOLONG";
    case Errno::exdev:
      return "EXDEV";
    case Errno::eintr:
      return "EINTR";
    case Errno::enospc:
      return "ENOSPC";
    case Errno::eio:
      return "EIO";
  }
  return "E???";
}

}  // namespace tocttou
