#include "tocttou/common/rng.h"

#include <cmath>

#include "tocttou/common/error.h"

namespace tocttou {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_seed(std::uint64_t base, std::uint64_t stream) {
  std::uint64_t s = base ^ (stream * 0xD6E8FEB86659FD93ULL);
  // Two splitmix rounds decorrelate adjacent stream indices.
  (void)splitmix64(s);
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53-bit mantissa in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  TOCTTOU_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return lo + static_cast<std::int64_t>(x % range);
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to keep log() finite.
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stdev) {
  return mean + stdev * normal();
}

double Rng::exponential(double mean) {
  TOCTTOU_CHECK(mean > 0.0, "exponential requires mean > 0");
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Duration Rng::uniform_duration(Duration lo, Duration hi) {
  return Duration::nanos(uniform_int(lo.ns(), hi.ns()));
}

Duration Rng::normal_duration(Duration mean, Duration stdev, Duration floor) {
  const double ns = normal(static_cast<double>(mean.ns()),
                           static_cast<double>(stdev.ns()));
  const auto d = Duration::nanos(static_cast<std::int64_t>(ns));
  return d < floor ? floor : d;
}

Rng Rng::fork() {
  return Rng(next_u64());
}

}  // namespace tocttou
