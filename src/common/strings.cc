#include "tocttou/common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace tocttou {

namespace {

/// Shared component scanner: calls `sink(component)` for every component
/// split_path would keep. Templated so the three public entry points
/// stay byte-for-byte consistent on the drop rules (empty and ".").
template <typename Sink>
void for_each_component(std::string_view path, Sink&& sink) {
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    if (j > i) {
      std::string_view comp = path.substr(i, j - i);
      if (comp != ".") sink(comp);
    }
    i = j;
  }
}

}  // namespace

std::vector<std::string> split_path(std::string_view path) {
  std::vector<std::string> parts;
  for_each_component(path,
                     [&parts](std::string_view c) { parts.emplace_back(c); });
  return parts;
}

std::vector<std::string_view> split_path_views(std::string_view path) {
  std::vector<std::string_view> parts;
  for_each_component(path,
                     [&parts](std::string_view c) { parts.push_back(c); });
  return parts;
}

std::size_t count_path_components(std::string_view path) {
  std::size_t n = 0;
  for_each_component(path, [&n](std::string_view) { ++n; });
  return n;
}

bool is_absolute_path(std::string_view path) {
  return !path.empty() && path.front() == '/';
}

std::string join_path(const std::vector<std::string>& components) {
  if (components.empty()) return "/";
  std::string out;
  for (const auto& c : components) {
    out += '/';
    out += c;
  }
  return out;
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string csv_escape(std::string_view field) {
  if (field.find_first_of(",\"\r\n") == std::string_view::npos) {
    return std::string(field);
  }
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string pad_right(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(s) + std::string(width - s.size(), ' ');
}

}  // namespace tocttou
