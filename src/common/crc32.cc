#include "tocttou/common/crc32.h"

#include <array>

namespace tocttou {

namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(std::uint32_t crc, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace tocttou
