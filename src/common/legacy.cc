#include "tocttou/common/legacy.h"

namespace tocttou {

namespace detail {
bool g_legacy_structures = false;
}  // namespace detail

void set_legacy_structures(bool on) { detail::g_legacy_structures = on; }

}  // namespace tocttou
