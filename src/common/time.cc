#include "tocttou/common/time.h"

#include "tocttou/common/strings.h"

namespace tocttou {

std::string Duration::to_string() const {
  const double abs_ns = ns_ < 0 ? -static_cast<double>(ns_)
                                : static_cast<double>(ns_);
  if (abs_ns < 1000.0) {
    return strfmt("%ldns", static_cast<long>(ns_));
  }
  if (abs_ns < 1'000'000.0) {
    return strfmt("%.1fus", us());
  }
  if (abs_ns < 1'000'000'000.0) {
    return strfmt("%.3fms", ms());
  }
  return strfmt("%.3fs", ms() / 1000.0);
}

std::string SimTime::to_string() const {
  return strfmt("t=%.1fus", us());
}

}  // namespace tocttou
