#include "tocttou/common/stats.h"

#include <algorithm>
#include <cmath>

#include "tocttou/common/error.h"
#include "tocttou/common/strings.h"

namespace tocttou {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stdev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }
double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::string RunningStats::summary() const {
  // The count goes through strfmt's varargs as an explicitly-widened
  // unsigned long long: %llu/ull is an exact match on every platform,
  // whereas %zu leans on the C99 printf runtime (and a size_t narrower
  // than the format expects would desynchronize every later vararg).
  return strfmt("n=%llu mean=%.3f stdev=%.3f min=%.3f max=%.3f",
                static_cast<unsigned long long>(n_), mean(), stdev(), min(),
                max());
}

void Samples::add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

// Order statistics work on a scratch copy so `values()` keeps returning
// the samples in insertion order.
const std::vector<double>& Samples::sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return sorted_;
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::stdev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double v : values_) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values_.size() - 1));
}

double Samples::min() const {
  return values_.empty() ? 0.0 : sorted().front();
}

double Samples::max() const {
  return values_.empty() ? 0.0 : sorted().back();
}

double Samples::quantile(double q) const {
  TOCTTOU_CHECK(q >= 0.0 && q <= 1.0, "quantile requires q in [0,1]");
  if (values_.empty()) return 0.0;
  const std::vector<double>& v = sorted();
  if (v.size() == 1) return v[0];
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

void SuccessCounter::record(bool success) {
  ++trials_;
  if (success) ++successes_;
}

void SuccessCounter::merge(const SuccessCounter& other) {
  trials_ += other.trials_;
  successes_ += other.successes_;
}

double SuccessCounter::rate() const {
  return trials_ == 0
             ? 0.0
             : static_cast<double>(successes_) / static_cast<double>(trials_);
}

std::pair<double, double> SuccessCounter::wilson95() const {
  if (trials_ == 0) return {0.0, 1.0};
  const double z = 1.959963985;  // 97.5th percentile of N(0,1)
  const double n = static_cast<double>(trials_);
  const double p = rate();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  TOCTTOU_CHECK(cells.size() == headers_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += (c == 0 ? "| " : " | ");
      out += pad_right(cells[c], widths[c]);
    }
    out += " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += (c == 0 ? "|-" : "-|-");
    out += std::string(widths[c], '-');
  }
  out += "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string TextTable::fmt(double v, int precision) {
  return strfmt("%.*f", precision, v);
}

std::string TextTable::pct(double v, int precision) {
  return strfmt("%.*f%%", precision, v * 100.0);
}

}  // namespace tocttou
