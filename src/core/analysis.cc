#include "tocttou/core/analysis.h"

#include <algorithm>

#include "tocttou/core/model.h"

namespace tocttou::core {

WindowSpec WindowSpec::vi(std::string wfname) {
  WindowSpec s;
  s.check_call = "open";
  s.check_on_path2 = false;
  s.use_call = "chown";
  s.path = std::move(wfname);
  return s;
}

WindowSpec WindowSpec::gedit(std::string real_filename) {
  WindowSpec s;
  s.check_call = "rename";
  s.check_on_path2 = true;  // rename(temp -> real): real is path2
  s.use_call = "chmod";
  s.path = std::move(real_filename);
  return s;
}

std::optional<double> WindowMeasurement::predicted_rate() const {
  if (!laxity || !d || *d <= Duration::zero()) return std::nullopt;
  return laxity_success_rate(*laxity, *d);
}

WindowMeasurement analyze_window(const trace::SyscallJournal& journal,
                                 trace::Pid victim, trace::Pid attacker,
                                 const WindowSpec& spec,
                                 DConvention convention) {
  WindowMeasurement m;

  // --- victim side: window_open (check exit) and t3 (use enter) ---
  // The victim may issue the check call several times on the watched
  // path (e.g. vi opens the file read-only at startup and again, with
  // O_CREAT, during the save). The vulnerability window is the TIGHTEST
  // <check, use> pair: for each successful check, find the first use
  // after it and keep the pair with the smallest gap.
  // Filter by pointer: a journal holds thousands of records (each with
  // heap-allocated path strings), and this analysis runs once per
  // explored schedule — copying the filtered records dominated its cost.
  std::vector<const trace::SyscallRecord*> checks;
  for (const auto& r : journal.records()) {
    if (r.pid != victim || r.name != spec.check_call) continue;
    if (r.result != Errno::ok) continue;
    const std::string& p = spec.check_on_path2 ? r.path2 : r.path;
    if (p != spec.path) continue;
    checks.push_back(&r);
  }
  if (checks.empty()) return m;
  std::vector<const trace::SyscallRecord*> uses;
  for (const auto& r : journal.records()) {
    if (r.pid == victim && r.name == spec.use_call && r.path == spec.path) {
      uses.push_back(&r);
    }
  }
  std::optional<Duration> best_gap;
  for (const trace::SyscallRecord* c : checks) {
    const trace::SyscallRecord* first_use = nullptr;
    for (const trace::SyscallRecord* u : uses) {
      if (u->enter >= c->exit &&
          (first_use == nullptr || u->enter < first_use->enter)) {
        first_use = u;
      }
    }
    if (first_use == nullptr) continue;
    const Duration gap = first_use->enter - c->exit;
    if (!best_gap || gap < *best_gap) {
      best_gap = gap;
      m.window_found = true;
      m.window_open = c->exit;
      m.t3 = first_use->enter;
    }
  }
  if (!m.window_found) return m;

  // --- attacker side: detection stats on the watched path ---
  std::vector<const trace::SyscallRecord*> stats;
  for (const auto& r : journal.records()) {
    if (r.pid == attacker && r.name == "stat") stats.push_back(&r);
  }
  const trace::SyscallRecord* detect = nullptr;
  for (const trace::SyscallRecord* r : stats) {
    if (r->path != spec.path) continue;
    if (r->result == Errno::ok && r->st_uid && *r->st_uid == 0 &&
        r->st_gid && *r->st_gid == 0) {
      if (detect == nullptr || r->enter < detect->enter) detect = r;
    }
  }
  if (detect == nullptr) return m;
  m.detected = true;
  // Effective detection start: a stat that *entered* before the window
  // opened (blocked on the directory semaphore behind the check call)
  // cannot logically have begun observing the window before it existed,
  // so clamp t1 to the window-open instant. The paper's t1 ("earliest
  // observed start time of stat which indicates a vulnerability window")
  // has the same intent; without the clamp L is systematically inflated
  // by up to one blocked-stat duration.
  m.t1 = max(detect->enter, m.window_open);

  // --- D per convention ---
  switch (convention) {
    case DConvention::loop_iteration: {
      // Mean period between consecutive detection-loop stats up to and
      // including the detecting one.
      Duration total = Duration::zero();
      int gaps = 0;
      std::optional<SimTime> prev;
      for (const trace::SyscallRecord* r : stats) {
        if (r->path != spec.path) continue;
        if (r->enter > detect->enter) break;
        if (prev) {
          total += r->enter - *prev;
          ++gaps;
        }
        prev = r->enter;
      }
      if (gaps > 0) m.d = total / gaps;
      break;
    }
    case DConvention::stat_to_unlink: {
      // Interval from the detecting stat's start to the unlink's start
      // (includes post-detection computation and any libc trap).
      const trace::SyscallRecord* unlink = nullptr;
      for (const auto& r : journal.records()) {
        if (r.pid != attacker || r.name != "unlink") continue;
        if (r.path == spec.path && r.enter >= detect->enter) {
          if (unlink == nullptr || r.enter < unlink->enter) unlink = &r;
        }
      }
      if (unlink != nullptr) {
        m.d = unlink->enter - m.t1;  // from the effective start
      }
      break;
    }
  }

  if (m.d) m.laxity = (m.t3 - *m.d) - m.t1;
  return m;
}

}  // namespace tocttou::core
