#include "tocttou/core/model.h"

#include <algorithm>
#include <cmath>

#include "tocttou/common/error.h"

namespace tocttou::core {

double laxity_success_rate(Duration laxity, Duration detection) {
  TOCTTOU_CHECK(detection > Duration::zero(), "D must be positive");
  if (laxity < Duration::zero()) return 0.0;
  if (laxity >= detection) return 1.0;
  return laxity / detection;
}

double laxity_success_rate(double l_over_d) {
  return std::clamp(l_over_d, 0.0, 1.0);
}

double noisy_laxity_success_rate(Duration l_mean, Duration l_stdev,
                                 Duration d_mean, Duration d_stdev,
                                 std::size_t samples, std::uint64_t seed) {
  TOCTTOU_CHECK(d_mean > Duration::zero(), "D must be positive");
  TOCTTOU_CHECK(samples > 0, "need at least one sample");
  Rng rng(seed);
  const Duration d_floor = Duration::micros(1);
  double acc = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto l = Duration::nanos(static_cast<std::int64_t>(
        rng.normal(static_cast<double>(l_mean.ns()),
                   static_cast<double>(l_stdev.ns()))));
    const auto d = max(d_floor,
                       rng.normal_duration(d_mean, d_stdev, d_floor));
    acc += laxity_success_rate(l, d);
  }
  return acc / static_cast<double>(samples);
}

double Equation1::success() const {
  auto check = [](double p) {
    TOCTTOU_CHECK(p >= 0.0 && p <= 1.0, "probabilities must be in [0,1]");
    return p;
  };
  const double ps = check(p_victim_suspended);
  return ps * check(p_sched_given_suspended) *
             check(p_finish_given_suspended) +
         (1.0 - ps) * check(p_sched_given_running) *
             check(p_finish_given_running);
}

Equation1 Equation1::uniprocessor(double p_victim_suspended,
                                  double p_sched_given_suspended,
                                  double p_finish_given_suspended) {
  Equation1 e;
  e.p_victim_suspended = p_victim_suspended;
  e.p_sched_given_suspended = p_sched_given_suspended;
  e.p_finish_given_suspended = p_finish_given_suspended;
  e.p_sched_given_running = 0.0;  // cannot run while the victim runs
  e.p_finish_given_running = 0.0;
  return e;
}

Equation1 Equation1::multiprocessor(double p_victim_suspended,
                                    Duration laxity, Duration detection) {
  Equation1 e;
  e.p_victim_suspended = p_victim_suspended;
  e.p_sched_given_suspended = 1.0;
  e.p_finish_given_suspended = 1.0;
  e.p_sched_given_running = 1.0;  // dedicated CPU
  e.p_finish_given_running = laxity_success_rate(laxity, detection);
  return e;
}

double p_suspended_timeslice(Duration window, Duration quantum) {
  TOCTTOU_CHECK(quantum > Duration::zero(), "quantum must be positive");
  if (window <= Duration::zero()) return 0.0;
  return std::min(1.0, window / quantum);
}

double p_suspended_io(double stall_prob_per_call, std::size_t calls) {
  TOCTTOU_CHECK(stall_prob_per_call >= 0.0 && stall_prob_per_call <= 1.0,
                "probability out of range");
  return 1.0 - std::pow(1.0 - stall_prob_per_call,
                        static_cast<double>(calls));
}

double combine_suspension(std::initializer_list<double> sources) {
  double stay = 1.0;
  for (double p : sources) {
    TOCTTOU_CHECK(p >= 0.0 && p <= 1.0, "probability out of range");
    stay *= 1.0 - p;
  }
  return 1.0 - stay;
}

namespace {
Duration vi_window(const ViModelParams& p, std::uint64_t bytes) {
  const double kb = static_cast<double>(bytes) / 1024.0;
  return p.window_base + p.window_per_kb * kb;
}
}  // namespace

double vi_uniprocessor_prediction(const ViModelParams& p,
                                  std::uint64_t bytes) {
  const Duration window = vi_window(p, bytes);
  const auto writes = static_cast<std::size_t>(
      (bytes + p.write_chunk_bytes - 1) / p.write_chunk_bytes);
  const double p_susp = combine_suspension(
      {p_suspended_timeslice(window, p.quantum),
       p_suspended_io(p.write_stall_prob, writes)});
  return Equation1::uniprocessor(p_susp).success();
}

double vi_multiprocessor_prediction(const ViModelParams& p,
                                    std::uint64_t bytes) {
  const Duration window = vi_window(p, bytes);
  // L ~ window - D (the last detection chance is one iteration before
  // the chown); any suspension only widens the window.
  const Duration laxity = window - p.attacker_iteration;
  return Equation1::multiprocessor(0.0, laxity, p.attacker_iteration)
      .success();
}

}  // namespace tocttou::core
