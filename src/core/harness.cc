#include "tocttou/core/harness.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "tocttou/common/strings.h"
#include "tocttou/core/round_run.h"
#include "tocttou/explore/token.h"
#include "tocttou/fs/vfs.h"
#include "tocttou/programs/attackers.h"
#include "tocttou/programs/victims.h"
#include "tocttou/sched/linux_sched.h"
#include "tocttou/sim/clone.h"
#include "tocttou/sim/kernel.h"

namespace tocttou::core {

const char* to_string(VictimKind v) {
  switch (v) {
    case VictimKind::vi:
      return "vi";
    case VictimKind::gedit:
      return "gedit";
    case VictimKind::suspending:
      return "suspending";
    case VictimKind::sendmail:
      return "sendmail";
  }
  return "?";
}

const char* to_string(AttackerKind a) {
  switch (a) {
    case AttackerKind::naive:
      return "naive";
    case AttackerKind::prefaulted:
      return "prefaulted";
    case AttackerKind::pipelined:
      return "pipelined";
    case AttackerKind::none:
      return "none";
  }
  return "?";
}

DConvention d_convention_for(VictimKind v) {
  // vi (Table 1) uses the loop-iteration period; gedit (Table 2) the
  // stat-start -> unlink-start interval.
  return v == VictimKind::gedit ? DConvention::stat_to_unlink
                                : DConvention::loop_iteration;
}

WindowSpec window_spec_for(const ScenarioConfig& cfg) {
  switch (cfg.victim) {
    case VictimKind::gedit:
      return WindowSpec::gedit(cfg.watched_path);
    case VictimKind::vi:
      return WindowSpec::vi(cfg.watched_path);
    case VictimKind::suspending: {
      WindowSpec s;
      s.check_call = "open";
      s.use_call = "chown";
      s.path = cfg.watched_path;
      return s;
    }
    case VictimKind::sendmail: {
      WindowSpec s;
      s.check_call = "lstat";
      s.use_call = "open";
      s.path = cfg.watched_path;
      return s;
    }
  }
  return WindowSpec::vi(cfg.watched_path);
}

std::pair<Duration, Duration> victim_think_range(const ScenarioConfig& cfg) {
  if (cfg.profile.machine.n_cpus == 1) {
    // Randomize where the save falls within the victim's time slice.
    return {Duration::zero(), cfg.profile.machine.timeslice * 2.0};
  }
  return {Duration::micros(200), Duration::millis(1)};
}

sched::LinuxSchedParams default_sched_params(const ScenarioConfig& cfg) {
  return sched::LinuxSchedParams{cfg.profile.machine.timeslice,
                                 /*wake_preempts_equal_priority=*/true};
}

namespace {

using programs::AttackTarget;

Duration default_think(const ScenarioConfig& cfg, Rng& rng) {
  if (cfg.victim_think) return *cfg.victim_think;
  const auto [lo, hi] = victim_think_range(cfg);
  return rng.uniform_duration(lo, hi);
}

/// FNV-1a (32-bit) accumulator.
struct Fnv32 {
  std::uint32_t h = 2166136261u;
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 16777619u;
    }
  }
  void str(const std::string& s) {
    bytes(s.data(), s.size());
    const char nul = '\0';  // keep ("ab","c") distinct from ("a","bc")
    bytes(&nul, 1);
  }
  void i64(std::int64_t v) { bytes(&v, sizeof v); }
  void f64(double v) { bytes(&v, sizeof v); }
};

}  // namespace

std::uint32_t scenario_fingerprint(const ScenarioConfig& cfg) {
  Fnv32 f;
  const sim::MachineSpec& m = cfg.profile.machine;
  f.str(cfg.profile.name);
  f.i64(m.n_cpus);
  f.f64(m.speed);
  f.i64(m.timeslice.ns());
  f.i64(m.context_switch_cost.ns());
  f.i64(m.wakeup_latency.ns());
  f.i64(m.libc_fault_cost.ns());
  f.f64(m.noise.rel_sigma);
  f.i64(m.noise.tick_period.ns());
  f.i64(m.noise.tick_cost_mean.ns());
  f.i64(m.noise.tick_cost_stdev.ns());
  f.f64(m.noise.softirq_prob);
  f.i64(m.noise.softirq_cost_mean.ns());
  f.i64(m.noise.softirq_cost_stdev.ns());
  f.i64(m.background.enabled ? 1 : 0);
  f.i64(m.background.mean_interval.ns());
  f.i64(m.background.burst_mean.ns());
  f.i64(m.background.burst_stdev.ns());
  f.i64(m.background.priority);
  f.i64(static_cast<std::int64_t>(cfg.victim));
  f.i64(static_cast<std::int64_t>(cfg.attacker));
  f.i64(static_cast<std::int64_t>(cfg.file_bytes));
  f.i64(cfg.background_load ? 1 : 0);
  f.i64(cfg.defended_victim ? 1 : 0);
  f.str(cfg.watched_path);
  f.str(cfg.evil_target);
  f.str(cfg.dummy_path);
  f.i64(cfg.attacker_uid);
  f.i64(cfg.attacker_gid);
  f.i64(cfg.round_limit.ns());
  f.str(cfg.faults.describe());
  // Multi-tenant spec: folded in only when non-empty, so fingerprints
  // (and thus every schedule token) minted before the field existed —
  // or with tenants off — are unchanged.
  if (!cfg.background.empty()) f.str("bg:" + cfg.background.describe());
  return f.h;
}

RoundContext::RoundContext() = default;
RoundContext::~RoundContext() = default;

RoundResult run_round(const ScenarioConfig& cfg) {
  return run_round(cfg, nullptr);
}

RoundRun::RoundRun(const ScenarioConfig& cfg, RoundContext* ctx)
    : cfg_(cfg), timer_(cfg.wall_profile) {
  RoundResult& res = res_;
  Rng setup_rng(mix_seed(cfg.seed, 0xA11CE));

  // --- file system tree (context-owned and reset, or a fresh local) ---
  if (ctx != nullptr) {
    if (ctx->vfs_ == nullptr) {
      ctx->vfs_ = std::make_unique<fs::Vfs>(cfg.profile.costs);
    } else {
      ctx->vfs_->reset(cfg.profile.costs);
    }
    vfs_ = ctx->vfs_.get();
  } else {
    local_vfs_.emplace(cfg.profile.costs);
    vfs_ = &*local_vfs_;
  }
  fs::Vfs& vfs = *vfs_;
  if (cfg.collect_metrics) vfs.set_metrics(&res.metrics);
  vfs.mkdir_p("/etc", 0, 0, 0755);
  passwd_ = vfs.create_file(cfg.evil_target, 0, 0, 0644, 1536);
  vfs.mkdir_p("/home/alice", cfg.attacker_uid, cfg.attacker_gid, 0755);
  vfs.mkdir_p("/tmp", 0, 0, 0777);
  vfs.create_file(cfg.watched_path, cfg.attacker_uid, cfg.attacker_gid, 0644,
                  cfg.file_bytes);
  vfs.create_file(cfg.dummy_path, cfg.attacker_uid, cfg.attacker_gid, 0644, 0);
  programs::stage_background_tree(vfs, cfg.background);

  // --- fault injector (its own Rng stream; kernel noise untouched) ---
  std::optional<sim::FaultInjector>& injector = injector_;
  if (!cfg.faults.empty()) {
    injector.emplace(cfg.faults, mix_seed(cfg.seed, 0xFA017));
    vfs.set_fault_injector(&*injector);
  }

  // --- kernel ---
  // Detection replays the journal against the sync stream, so it needs
  // the records even when the caller did not ask for them.
  const bool tracing =
      cfg.record_journal || cfg.record_events || cfg.detect;
  res.trace.log_events = cfg.record_events;
  std::unique_ptr<sim::Scheduler> sched;
  if (cfg.scheduler_factory) {
    sched = cfg.scheduler_factory(cfg);
  } else {
    sched =
        std::make_unique<sched::LinuxLikeScheduler>(default_sched_params(cfg));
  }
  if (ctx != nullptr) {
    if (ctx->kernel_ == nullptr) {
      ctx->kernel_ = std::make_unique<sim::Kernel>(
          cfg.profile.machine, std::move(sched), mix_seed(cfg.seed, 0x5EED),
          tracing ? &res.trace : nullptr);
    } else {
      ctx->kernel_->reset(cfg.profile.machine, std::move(sched),
                          mix_seed(cfg.seed, 0x5EED),
                          tracing ? &res.trace : nullptr);
      ++ctx->reuses_;
    }
    kernel_ = ctx->kernel_.get();
  } else {
    local_kernel_.emplace(cfg.profile.machine, std::move(sched),
                          mix_seed(cfg.seed, 0x5EED),
                          tracing ? &res.trace : nullptr);
    kernel_ = &*local_kernel_;
  }
  sim::Kernel& kernel = *kernel_;
  if (cfg.collect_metrics) kernel.set_metrics(&res.metrics);
  if (cfg.detect) kernel.set_sync_log(&res.sync);
  if (injector) kernel.set_fault_injector(&*injector);
  if (cfg.background_load) kernel.start_background_load();

  // --- attacker(s): spawned first — they are waiting for the admin ---
  const auto& t = cfg.profile.timings;
  AttackTarget target{cfg.watched_path, cfg.evil_target, cfg.dummy_path};
  const Duration loop_comp = (cfg.victim == VictimKind::vi)
                                 ? t.atk_loop_comp_vi
                                 : t.atk_loop_comp_gedit;
  sim::SpawnOptions aopts;
  aopts.name = "attacker";
  aopts.uid = cfg.attacker_uid;
  aopts.gid = cfg.attacker_gid;

  pipeline_state_ = std::make_unique<programs::PipelinedAttackState>();
  switch (cfg.attacker) {
    case AttackerKind::naive: {
      auto prog = std::make_unique<programs::NaiveAttacker>(
          vfs, target, loop_comp, t.atk_post_detect_comp, t.retry);
      naive_ = prog.get();
      res.attacker_pid = kernel.spawn(std::move(prog), aopts);
      break;
    }
    case AttackerKind::prefaulted: {
      auto prog = std::make_unique<programs::PrefaultedAttacker>(
          vfs, target, t.atk_v2_comp, t.retry);
      prefaulted_ = prog.get();
      res.attacker_pid = kernel.spawn(std::move(prog), aopts);
      break;
    }
    case AttackerKind::pipelined: {
      auto main = std::make_unique<programs::PipelinedAttackerMain>(
          vfs, target, loop_comp, t.atk_thread_handoff, pipeline_state_.get(),
          t.retry);
      auto helper = std::make_unique<programs::PipelinedAttackerSymlinker>(
          vfs, target, t.atk_thread_handoff, pipeline_state_.get());
      res.attacker_pid = kernel.spawn(std::move(main), aopts);
      sim::SpawnOptions hopts = aopts;
      hopts.name = "attacker/symlink";
      res.attacker_pid2 = kernel.spawn(std::move(helper), hopts);
      break;
    }
    case AttackerKind::none:
      break;
  }
  if (injector) {
    if (res.attacker_pid != 0) {
      injector->set_role(res.attacker_pid, sim::FaultRole::attacker);
    }
    if (res.attacker_pid2 != 0) {
      injector->set_role(res.attacker_pid2, sim::FaultRole::attacker);
    }
  }

  // --- victim (root) ---
  // setup_rng's ONLY draw: replaying with victim_think pinned from a
  // token therefore reproduces the round bit-for-bit (the draw is simply
  // skipped; nothing downstream shares the stream).
  const Duration think = default_think(cfg, setup_rng);
  {
    explore::ScheduleToken tok;
    tok.fingerprint = scenario_fingerprint(cfg);
    tok.seed = cfg.seed;
    tok.think_ns = think.ns();
    res.schedule_token = tok.serialize();
  }
  sim::SpawnOptions vopts;
  vopts.name = to_string(cfg.victim);
  vopts.uid = 0;
  vopts.gid = 0;
  std::unique_ptr<sim::Program> vic;
  switch (cfg.victim) {
    case VictimKind::vi: {
      programs::ViVictimConfig vc;
      vc.wfname = cfg.watched_path;
      vc.backup_name = cfg.watched_path + "~";
      vc.file_bytes = cfg.file_bytes;
      vc.owner_uid = cfg.attacker_uid;
      vc.owner_gid = cfg.attacker_gid;
      vc.think_time = think;
      vc.fd_attr_remedy = cfg.defended_victim;
      vc.t = t;
      auto prog = std::make_unique<programs::ViVictim>(vfs, vc);
      vi_vic_ = prog.get();
      vic = std::move(prog);
      break;
    }
    case VictimKind::gedit: {
      programs::GeditVictimConfig gc;
      gc.real_filename = cfg.watched_path;
      gc.temp_filename = "/home/alice/.goutputstream-sim";
      gc.backup_name = cfg.watched_path + "~";
      gc.file_bytes = cfg.file_bytes;
      gc.owner_uid = cfg.attacker_uid;
      gc.owner_gid = cfg.attacker_gid;
      gc.think_time = think;
      gc.fd_attr_remedy = cfg.defended_victim;
      gc.t = t;
      auto prog = std::make_unique<programs::GeditVictim>(vfs, gc);
      gedit_vic_ = prog.get();
      vic = std::move(prog);
      break;
    }
    case VictimKind::suspending: {
      programs::SuspendingVictimConfig sc;
      sc.path = cfg.watched_path;
      sc.owner_uid = cfg.attacker_uid;
      sc.owner_gid = cfg.attacker_gid;
      sc.think_time = think;
      vic = std::make_unique<programs::SuspendingVictim>(vfs, sc);
      break;
    }
    case VictimKind::sendmail: {
      programs::SendmailVictimConfig mc;
      mc.mailbox = cfg.watched_path;
      mc.think_time = think;
      vic = std::make_unique<programs::SendmailVictim>(vfs, mc);
      break;
    }
  }
  victim_pid_ = kernel.spawn(std::move(vic), vopts);
  res.victim_pid = victim_pid_;
  if (injector) injector->set_role(victim_pid_, sim::FaultRole::victim);

  // --- multi-tenant background load: spawned after the victim so
  // victim/attacker pids (and thus journals, traces, and tokens) match
  // the tenant-free scenario exactly when the spec is empty. Tenants
  // loop forever; the round still ends when the victim exits. ---
  programs::spawn_background_tenants(kernel, vfs, cfg.background);

  // --- extra programs (test hook): spawned last so victim/attacker pids
  // match the plain scenario exactly ---
  for (const ScenarioConfig::ExtraProgram& ep : cfg.extra_programs) {
    TOCTTOU_CHECK(static_cast<bool>(ep.make), "extra program lacks a factory");
    sim::SpawnOptions eopts;
    eopts.name = ep.name;
    eopts.uid = ep.uid;
    eopts.gid = ep.gid;
    kernel.spawn(ep.make(vfs), eopts);
  }

  timer_.lap(&metrics::WallProfile::setup_ns);
  limit_ = SimTime::origin() + cfg.round_limit;
}

RoundRun::RoundRun(const RoundRun& o)
    : cfg_(o.cfg_),
      res_(o.res_),
      timer_(nullptr),  // the parent keeps the wall profile
      passwd_(o.passwd_),
      victim_pid_(o.victim_pid_),
      phase_(o.phase_),
      limit_(o.limit_),
      drain_limit_(o.drain_limit_) {
  sim::CloneMap m;
  // Registration order matters: sinks the kernel/vfs point into (result
  // streams, injector, shared attack state) first, then the VFS (which
  // registers itself and every inode), then the kernel (process table,
  // scheduler queues, programs, in-flight ops), then the observer
  // pointers into the now-registered programs.
  m.add_range(&o.res_, &res_, sizeof(RoundResult));
  if (o.injector_) {
    injector_.emplace(*o.injector_);
    m.add_range(&*o.injector_, &*injector_, sizeof(sim::FaultInjector));
  }
  if (o.pipeline_state_ != nullptr) {
    pipeline_state_ = std::make_unique<programs::PipelinedAttackState>(
        *o.pipeline_state_, m);
    m.add_range(o.pipeline_state_.get(), pipeline_state_.get(),
                sizeof(programs::PipelinedAttackState));
  }
  local_vfs_.emplace(*o.vfs_, m);
  vfs_ = &*local_vfs_;
  local_kernel_.emplace(*o.kernel_, m);
  kernel_ = &*local_kernel_;
  naive_ = m.remap(o.naive_);
  prefaulted_ = m.remap(o.prefaulted_);
  vi_vic_ = m.remap(o.vi_vic_);
  gedit_vic_ = m.remap(o.gedit_vic_);
}

RoundRun::~RoundRun() = default;

bool RoundRun::attackers_exited() const {
  if (!kernel_->process(res_.attacker_pid).exited()) return false;
  return res_.attacker_pid2 == 0 ||
         kernel_->process(res_.attacker_pid2).exited();
}

void RoundRun::end_victim_phase(bool victim_done) {
  res_.victim_completed = victim_done;
  // run_until returns false for both "limit exceeded" and "queue
  // drained"; only the former is a time-limit hit.
  res_.hit_time_limit = !victim_done && !kernel_->idle();
  if (cfg_.attacker != AttackerKind::none) {
    phase_ = Phase::drain;
    drain_limit_ = min(limit_, kernel_->now() + Duration::millis(2));
  } else {
    end_sim();
  }
}

void RoundRun::end_sim() {
  res_.end_time = kernel_->now();
  res_.events = kernel_->events_executed();
  timer_.lap(&metrics::WallProfile::sim_ns);
  phase_ = Phase::sim_over;
}

bool RoundRun::step() {
  // Watchdog: a round that executes this many kernel events without
  // finishing is livelocked (healthy rounds take orders of magnitude
  // fewer). Checked only when another event is about to run, so a round
  // that ends exactly at the budget still finishes normally.
  const auto check_budget = [this] {
    if (cfg_.step_budget != 0 &&
        kernel_->events_executed() >= cfg_.step_budget) {
      throw StepBudgetError(strfmt(
          "round exceeded its kernel step budget (%llu events executed, "
          "budget %llu): livelocked simulation",
          static_cast<unsigned long long>(kernel_->events_executed()),
          static_cast<unsigned long long>(cfg_.step_budget)));
    }
  };
  // Each phase mirrors one of run_round's historical run_until calls:
  // stop condition first, then queue-drained, then the time limit, then
  // one event — so a stepped round is byte-identical to a run_until one.
  while (true) {
    switch (phase_) {
      case Phase::victim:
        if (kernel_->process(victim_pid_).exited()) {
          end_victim_phase(true);
          continue;
        }
        if (kernel_->idle() || kernel_->next_event_time() > limit_) {
          end_victim_phase(false);
          continue;
        }
        check_budget();
        kernel_->step();
        return true;
      case Phase::drain:
        if (attackers_exited() || kernel_->idle() ||
            kernel_->next_event_time() > drain_limit_) {
          end_sim();
          continue;
        }
        check_budget();
        kernel_->step();
        return true;
      case Phase::sim_over:
        return false;
    }
  }
}

void RoundRun::hash_state(StateHasher& h) const {
  if (injector_.has_value()) h.mark_unhashable();
  h.u32(static_cast<std::uint32_t>(phase_));
  h.time(limit_);
  h.time(drain_limit_);
  vfs_->hash_state(h);
  kernel_->hash_state(h);
  h.boolean(pipeline_state_ != nullptr);
  if (pipeline_state_ != nullptr) {
    pipeline_state_->window_found.hash_state(h);
    programs::hash_attacker_status(h, pipeline_state_->status);
  }
}

RoundResult RoundRun::finish() {
  while (step()) {
  }
  RoundResult& res = res_;
  const ScenarioConfig& cfg = cfg_;

  // --- judge ---
  const fs::Inode& pw = vfs_->inode(passwd_);
  res.success = (pw.uid() == cfg.attacker_uid);
  if (cfg.victim == VictimKind::sendmail) {
    // sendmail success = the message bytes were appended to /etc/passwd.
    res.success = (pw.size_bytes() > 1536);
  }
  if (naive_ != nullptr) {
    res.attacker_finished = naive_->status().attack_done;
    res.attacker_iterations = naive_->status().iterations;
  } else if (prefaulted_ != nullptr) {
    res.attacker_finished = prefaulted_->status().attack_done;
    res.attacker_iterations = prefaulted_->status().iterations;
  } else if (cfg.attacker == AttackerKind::pipelined) {
    res.attacker_finished = pipeline_state_->status.attack_done;
    res.attacker_iterations = pipeline_state_->status.iterations;
  }

  if (cfg.record_journal && cfg.attacker != AttackerKind::none) {
    res.window =
        analyze_window(res.trace.journal, victim_pid_, res.attacker_pid,
                       window_spec_for(cfg), d_convention_for(cfg.victim));
  }

  // --- happens-before race detection over the recorded streams ---
  if (cfg.detect) {
    res.detect = detect::analyze_round(res.sync, res.trace.journal);
    if (cfg.collect_metrics) {
      res.metrics.count("detect.sync_events",
                        static_cast<std::int64_t>(res.sync.events().size()));
      res.metrics.count("detect.windows",
                        static_cast<std::int64_t>(res.detect.windows));
      res.metrics.count("detect.mutations",
                        static_cast<std::int64_t>(res.detect.mutations));
      res.metrics.count("detect.races",
                        static_cast<std::int64_t>(res.detect.races));
      if (res.detect.races > 0) res.metrics.count("detect.rounds_flagged");
    }
  }

  // --- post-round robustness accounting ---
  timer_.lap(&metrics::WallProfile::analyze_ns);
  res.audit_violations = vfs_->audit();
  timer_.lap(&metrics::WallProfile::audit_ns);
  if (injector_) {
    res.faults = injector_->stats();
    int retries = 0;
    if (vi_vic_ != nullptr) retries += vi_vic_->retries();
    if (gedit_vic_ != nullptr) retries += gedit_vic_->retries();
    if (naive_ != nullptr) {
      retries += naive_->status().retries;
    } else if (prefaulted_ != nullptr) {
      retries += prefaulted_->status().retries;
    } else if (cfg.attacker == AttackerKind::pipelined) {
      retries += pipeline_state_->status.retries;
    }
    res.faults.retries += static_cast<std::uint64_t>(retries);
    // A fault-killed victim also "exits", but it did not survive: keep
    // it out of the survived-the-fault accounting.
    if (res.faults.total_injected() > 0 && res.victim_completed &&
        !injector_->was_killed(victim_pid_)) {
      res.faults.degraded_rounds = 1;  // survived the injected faults
    }
  }
  res.faults.invariant_violations += res.audit_violations.size();
  if (cfg.collect_metrics) {
    const sim::FaultStats& f = res.faults;
    if (f.errors_injected > 0) {
      res.metrics.count("faults.injected.error", f.errors_injected);
    }
    if (f.latency_spikes > 0) {
      res.metrics.count("faults.injected.spike", f.latency_spikes);
    }
    if (f.wakeups_delayed > 0) {
      res.metrics.count("faults.injected.wakeup_delay", f.wakeups_delayed);
    }
    if (f.wakeups_dropped > 0) {
      res.metrics.count("faults.injected.wakeup_drop", f.wakeups_dropped);
    }
    if (f.kills > 0) res.metrics.count("faults.injected.kill", f.kills);
    if (f.retries > 0) res.metrics.count("faults.retries", f.retries);
  }
  timer_.finish();
  return std::move(res_);
}

RoundResult run_round(const ScenarioConfig& cfg, RoundContext* ctx) {
  RoundRun run(cfg, ctx);
  return run.finish();
}

namespace {

// Rounds are sharded into fixed-size blocks whose boundaries depend only
// on the round count — never on the worker count. Each block accumulates
// a private CampaignStats in round-index order, and the blocks merge in
// block-index order, so the reduction performs the identical arithmetic
// for any `jobs` value and the result is byte-for-byte reproducible.
constexpr int kBlockRounds = 8;

CampaignStats run_block(const ScenarioConfig& cfg, int begin, int end,
                        bool measure_ld, RoundContext* ctx) {
  CampaignStats stats;
  for (int i = begin; i < end; ++i) {
    ScenarioConfig round_cfg = cfg;
    round_cfg.seed = mix_seed(cfg.seed, static_cast<std::uint64_t>(i));
    round_cfg.record_journal = measure_ld;
    round_cfg.record_events = false;
    RoundResult r;
    try {
      r = run_round(round_cfg, ctx);
    } catch (const std::exception&) {
      // A round that blows an internal invariant is an anomaly to
      // report, not a reason to lose the rest of the campaign. Record a
      // replay token so the round can be re-run under a debugger; the
      // seed alone pins it (think is re-derived from the seed).
      ++stats.failed_rounds;
      ++stats.anomalies;
      if (static_cast<int>(stats.anomaly_tokens.size()) < kMaxAnomalyTokens) {
        explore::ScheduleToken tok;
        tok.fingerprint = scenario_fingerprint(round_cfg);
        tok.seed = round_cfg.seed;
        stats.anomaly_tokens.push_back(tok.serialize());
      }
      continue;
    }
    stats.success.record(r.success);
    stats.total_events += r.events;
    stats.faults.merge(r.faults);
    stats.metrics.merge(r.metrics);
    stats.detect.merge(r.detect);
    if (r.hit_time_limit) ++stats.anomalies;
    if (!r.victim_completed && !r.hit_time_limit) ++stats.victim_incomplete;
    if ((r.hit_time_limit || !r.victim_completed) &&
        static_cast<int>(stats.anomaly_tokens.size()) < kMaxAnomalyTokens) {
      stats.anomaly_tokens.push_back(r.schedule_token);
    }
    if (cfg.attacker != AttackerKind::none && !r.attacker_finished) {
      ++stats.attacker_unfinished;
    }
    if (r.window) {
      stats.detected.record(r.window->detected);
      if (r.window->window_found) {
        stats.victim_window_us.add(r.window->victim_window().us());
      }
      if (r.window->laxity) stats.laxity_us.add(r.window->laxity->us());
      if (r.window->d) stats.detection_us.add(r.window->d->us());
    }
  }
  return stats;
}

}  // namespace

void CampaignStats::merge(const CampaignStats& other) {
  success.merge(other.success);
  detected.merge(other.detected);
  laxity_us.merge(other.laxity_us);
  detection_us.merge(other.detection_us);
  victim_window_us.merge(other.victim_window_us);
  total_events += other.total_events;
  anomalies += other.anomalies;
  failed_rounds += other.failed_rounds;
  victim_incomplete += other.victim_incomplete;
  attacker_unfinished += other.attacker_unfinished;
  faults.merge(other.faults);
  metrics.merge(other.metrics);
  detect.merge(other.detect);
  for (const std::string& t : other.anomaly_tokens) {
    if (static_cast<int>(anomaly_tokens.size()) >= kMaxAnomalyTokens) break;
    anomaly_tokens.push_back(t);
  }
}

CampaignStats run_campaign(const ScenarioConfig& cfg, int rounds,
                           bool measure_ld, int jobs) {
  CampaignStats stats;
  if (rounds <= 0) return stats;

  const int n_blocks = (rounds + kBlockRounds - 1) / kBlockRounds;
  int workers = jobs > 0
                    ? jobs
                    : static_cast<int>(std::thread::hardware_concurrency());
  workers = std::clamp(workers, 1, n_blocks);

  // Wall profiling is serial-only: concurrent rounds would race on the
  // accumulator and interleave phase brackets into noise.
  ScenarioConfig serial_cfg;
  const ScenarioConfig* run_cfg = &cfg;
  if (workers > 1 && cfg.wall_profile != nullptr) {
    serial_cfg = cfg;
    serial_cfg.wall_profile = nullptr;
    run_cfg = &serial_cfg;
  }

  std::vector<CampaignStats> blocks(static_cast<std::size_t>(n_blocks));
  std::atomic<int> next_block{0};
  const auto work = [&] {
    // One reusable context per worker: rounds recycle the Vfs/Kernel
    // arenas instead of re-allocating the world. run_round in a reused
    // context is byte-identical to a fresh one (round_context ctest), so
    // the campaign's determinism contract is untouched.
    RoundContext ctx;
    for (int b = next_block.fetch_add(1, std::memory_order_relaxed);
         b < n_blocks;
         b = next_block.fetch_add(1, std::memory_order_relaxed)) {
      const int begin = b * kBlockRounds;
      blocks[static_cast<std::size_t>(b)] =
          run_block(*run_cfg, begin, std::min(rounds, begin + kBlockRounds),
                    measure_ld, &ctx);
    }
  };
  if (workers == 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(work);
    for (auto& t : pool) t.join();
  }

  for (const CampaignStats& b : blocks) stats.merge(b);
  return stats;
}

std::string CampaignStats::summary() const {
  const auto [lo, hi] = success.wilson95();
  std::string out = strfmt(
      "success %zu/%zu = %.1f%% (95%% CI %.1f-%.1f%%)",
      success.successes(), success.trials(), success.rate() * 100.0,
      lo * 100.0, hi * 100.0);
  if (!laxity_us.empty()) {
    out += strfmt("; L=%.1f±%.2fus", laxity_us.mean(), laxity_us.stdev());
  }
  if (!detection_us.empty()) {
    out += strfmt("%sD=%.1f±%.2fus", laxity_us.empty() ? "; " : " ",
                  detection_us.mean(), detection_us.stdev());
  }
  if (anomalies > 0) out += strfmt("; anomalies=%d", anomalies);
  if (failed_rounds > 0) out += strfmt(" (failed=%d)", failed_rounds);
  if (victim_incomplete > 0) {
    out += strfmt("; victim-incomplete=%d", victim_incomplete);
  }
  // Only mention faults when something actually happened, so no-fault
  // campaign output stays byte-identical to builds without this feature.
  if (faults.total_injected() > 0 || faults.retries > 0 ||
      faults.invariant_violations > 0) {
    out += "; " + faults.summary();
  }
  return out;
}

}  // namespace tocttou::core
