#include "tocttou/core/pairs.h"

#include <algorithm>
#include <map>

#include "tocttou/detect/classify.h"

namespace tocttou::core {

// The check/use/mutator truth tables live in detect/classify.h — the
// happens-before detector rediscovers pairs from raw traces and must
// agree with the post-mortem scanner on what counts as one, so both
// layers share the single taxonomy.

CallClass classify_call(std::string_view name) {
  const bool c = detect::is_check_name(name);
  const bool u = detect::is_use_name(name);
  if (c && u) return CallClass::both;
  if (c) return CallClass::check;
  if (u) return CallClass::use;
  return CallClass::neither;
}

bool is_check_call(std::string_view name) {
  return detect::is_check_name(name);
}
bool is_use_call(std::string_view name) {
  return detect::is_use_name(name);
}

const std::vector<PairShape>& known_pair_shapes() {
  static const std::vector<PairShape> shapes = {
      {"open", "chown",
       "vi 6.1 save path: creates the file as root, then gives it back"},
      {"rename", "chown",
       "gedit 2.8.3 save path: renames the scratch file, then restores "
       "ownership"},
      {"rename", "chmod",
       "gedit 2.8.3 save path: the chmod immediately before the chown"},
      {"lstat", "open",
       "sendmail-style mailbox append: checks for a symlink, then opens"},
      {"stat", "open", "generic existence check followed by open"},
      {"stat", "chown", "generic attribute check followed by ownership change"},
      {"access", "open", "the classic setuid access(2)/open(2) pair"},
      {"stat", "unlink", "cleanup daemons: check age/owner, then remove"},
      {"stat", "mkdir", "temp-dir creation after an existence probe"},
  };
  return shapes;
}

std::vector<DetectedPair> find_pairs(const trace::SyscallJournal& journal,
                                     trace::Pid pid) {
  std::vector<const trace::SyscallRecord*> recs;
  for (const auto& r : journal.records()) {
    if (r.pid == pid && !r.path.empty()) recs.push_back(&r);
  }
  std::sort(recs.begin(), recs.end(),
            [](const trace::SyscallRecord* a, const trace::SyscallRecord* b) {
              return a->enter < b->enter;
            });

  struct Pending {
    std::string call;
    SimTime exit;
  };
  std::map<std::string, Pending, std::less<>> last_check;
  std::vector<DetectedPair> out;
  std::vector<std::string_view> names;

  for (const auto* r : recs) {
    // The name(s) this call acts on: path always; rename acts on (and
    // then establishes) its new name path2; link dereferences oldpath
    // AND creates newpath, so a use on either name pairs. symlink's
    // path2 is the target STRING, not a resolved name — excluded by
    // acted_names().
    if (detect::is_use_name(r->name)) {
      detect::acted_names(*r, &names);
      for (std::string_view n : names) {
        auto it = last_check.find(n);
        if (it != last_check.end() && r->enter > it->second.exit) {
          out.push_back(DetectedPair{it->second.call, r->name, std::string(n),
                                     it->second.exit, r->enter});
        }
      }
    }
    if (r->result == Errno::ok) {
      // rename retires its old name before establishing the new one; a
      // failed check establishes nothing.
      if (r->name == "rename") last_check.erase(r->path);
      if (detect::is_check_name(r->name)) {
        detect::established_names(*r, &names);
        for (std::string_view n : names) {
          last_check[std::string(n)] = Pending{r->name, r->exit};
        }
      }
      if (r->name == "unlink") {
        last_check.erase(r->path);  // invariant destroyed with the name
      }
    }
  }
  return out;
}

std::optional<DetectedPair> find_widest_pair(
    const trace::SyscallJournal& journal, trace::Pid pid,
    std::string_view check, std::string_view use) {
  std::optional<DetectedPair> best;
  for (const auto& p : find_pairs(journal, pid)) {
    if (p.check_call == check && p.use_call == use) {
      if (!best || p.window() > best->window()) best = p;
    }
  }
  return best;
}

std::vector<Interference> find_interference(
    const trace::SyscallJournal& journal, trace::Pid victim) {
  const auto windows = find_pairs(journal, victim);
  std::vector<Interference> out;
  std::vector<std::string_view> names;
  for (const auto& r : journal.records()) {
    if (r.pid == victim || r.result != Errno::ok) continue;
    // Namespace mutations only: attribute changes (chown/chmod) do not
    // remap a name, so they cannot redirect the victim's use.
    if (!(r.name == "unlink" || r.name == "symlink" || r.name == "rename" ||
          r.name == "link" || r.name == "mkdir")) {
      continue;
    }
    // mutated_names resolves the secondary path per call: rename remaps
    // both ends, link binds its newpath (path2) — previously invisible.
    detect::mutated_names(r, &names);
    for (const auto& w : windows) {
      bool on_path = false;
      for (std::string_view n : names) on_path = on_path || n == w.path;
      if (!on_path) continue;
      if (r.enter >= w.check_exit && r.enter < w.use_enter) {
        out.push_back(Interference{w, r.pid, r.name, r.enter});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Interference& a, const Interference& b) {
              return a.at < b.at;
            });
  return out;
}

}  // namespace tocttou::core
