#include "tocttou/core/pairs.h"

#include <algorithm>
#include <map>

namespace tocttou::core {

namespace {

bool in(std::string_view name, std::initializer_list<const char*> set) {
  return std::any_of(set.begin(), set.end(),
                     [&](const char* c) { return name == c; });
}

// Check set: calls that establish an invariant about a name — either by
// observing it (stat family) or by creating/placing it (creation set).
// This follows the CUU model of the FAST'05 anatomy study: gedit's
// <rename, chown> pair has a *creation* call as its check.
bool establishes(std::string_view name) {
  return in(name, {"stat", "lstat", "access", "readlink", "open", "rename",
                   "symlink", "mkdir", "link"});
}

// Use set: calls that act on a name assuming an earlier invariant.
bool uses(std::string_view name) {
  return in(name, {"open", "chown", "chmod", "rename", "unlink", "symlink",
                   "link", "mkdir"});
}

}  // namespace

CallClass classify_call(std::string_view name) {
  const bool c = establishes(name);
  const bool u = uses(name);
  if (c && u) return CallClass::both;
  if (c) return CallClass::check;
  if (u) return CallClass::use;
  return CallClass::neither;
}

bool is_check_call(std::string_view name) { return establishes(name); }
bool is_use_call(std::string_view name) { return uses(name); }

const std::vector<PairShape>& known_pair_shapes() {
  static const std::vector<PairShape> shapes = {
      {"open", "chown",
       "vi 6.1 save path: creates the file as root, then gives it back"},
      {"rename", "chown",
       "gedit 2.8.3 save path: renames the scratch file, then restores "
       "ownership"},
      {"rename", "chmod",
       "gedit 2.8.3 save path: the chmod immediately before the chown"},
      {"lstat", "open",
       "sendmail-style mailbox append: checks for a symlink, then opens"},
      {"stat", "open", "generic existence check followed by open"},
      {"stat", "chown", "generic attribute check followed by ownership change"},
      {"access", "open", "the classic setuid access(2)/open(2) pair"},
      {"stat", "unlink", "cleanup daemons: check age/owner, then remove"},
      {"stat", "mkdir", "temp-dir creation after an existence probe"},
  };
  return shapes;
}

std::vector<DetectedPair> find_pairs(const trace::SyscallJournal& journal,
                                     trace::Pid pid) {
  std::vector<const trace::SyscallRecord*> recs;
  for (const auto& r : journal.records()) {
    if (r.pid == pid && !r.path.empty()) recs.push_back(&r);
  }
  std::sort(recs.begin(), recs.end(),
            [](const trace::SyscallRecord* a, const trace::SyscallRecord* b) {
              return a->enter < b->enter;
            });

  struct Pending {
    std::string call;
    SimTime exit;
  };
  std::map<std::string, Pending> last_check;
  std::vector<DetectedPair> out;

  for (const auto* r : recs) {
    // The name(s) this call acts on: path always; rename also acts on
    // (and then establishes) its new name path2.
    if (uses(r->name)) {
      auto it = last_check.find(r->path);
      if (it != last_check.end() && r->enter > it->second.exit) {
        out.push_back(DetectedPair{it->second.call, r->name, r->path,
                                   it->second.exit, r->enter});
      }
      if (r->name == "rename" && !r->path2.empty()) {
        auto it2 = last_check.find(r->path2);
        if (it2 != last_check.end() && r->enter > it2->second.exit) {
          out.push_back(DetectedPair{it2->second.call, r->name, r->path2,
                                     it2->second.exit, r->enter});
        }
      }
    }
    if (establishes(r->name) && r->result == Errno::ok) {
      // rename establishes its destination; a failed stat establishes
      // nothing; all others establish their primary path.
      if (r->name == "rename") {
        last_check[r->path2] = Pending{r->name, r->exit};
        last_check.erase(r->path);  // the old name no longer exists
      } else {
        last_check[r->path] = Pending{r->name, r->exit};
      }
    }
    if (r->name == "unlink" && r->result == Errno::ok) {
      last_check.erase(r->path);  // invariant destroyed with the name
    }
  }
  return out;
}

std::optional<DetectedPair> find_widest_pair(
    const trace::SyscallJournal& journal, trace::Pid pid,
    std::string_view check, std::string_view use) {
  std::optional<DetectedPair> best;
  for (const auto& p : find_pairs(journal, pid)) {
    if (p.check_call == check && p.use_call == use) {
      if (!best || p.window() > best->window()) best = p;
    }
  }
  return best;
}

std::vector<Interference> find_interference(
    const trace::SyscallJournal& journal, trace::Pid victim) {
  const auto windows = find_pairs(journal, victim);
  std::vector<Interference> out;
  for (const auto& r : journal.records()) {
    if (r.pid == victim || r.result != Errno::ok) continue;
    // Namespace mutations only: the calls that can remap a name.
    const bool mutates = in(r.name, {"unlink", "symlink", "rename", "link",
                                     "mkdir"});
    if (!mutates) continue;
    for (const auto& w : windows) {
      const bool on_path =
          r.path == w.path || (r.name == "rename" && r.path2 == w.path);
      if (!on_path) continue;
      if (r.enter >= w.check_exit && r.enter < w.use_enter) {
        out.push_back(Interference{w, r.pid, r.name, r.enter});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Interference& a, const Interference& b) {
              return a.at < b.at;
            });
  return out;
}

}  // namespace tocttou::core
