#include "tocttou/detect/cross_check.h"

#include <map>
#include <mutex>
#include <utility>

#include "tocttou/common/error.h"
#include "tocttou/common/strings.h"

namespace tocttou::detect {
namespace {

struct LeafFacts {
  bool landed = false;
  bool flagged = false;  // >= 1 finding on the watched path
  DetectReport report;
};

}  // namespace

CrossCheckResult cross_check(const core::ScenarioConfig& cfg,
                             const explore::ExploreConfig& ecfg) {
  TOCTTOU_CHECK(ecfg.mode == explore::ExploreMode::exhaustive,
                "cross_check needs exhaustive leaves (PCT has no "
                "leaf_observer stream)");

  core::ScenarioConfig dcfg = cfg;
  dcfg.detect = true;

  // Leaves arrive concurrently from worker threads; key by serialized
  // replay token (unique per leaf, memoized leaves fire once) and
  // reduce in sorted-key order afterwards for jobs-invariance.
  std::map<std::string, LeafFacts> leaves;
  std::mutex mu;
  explore::ExploreConfig ec = ecfg;
  auto chained = ecfg.leaf_observer;
  ec.leaf_observer = [&](const std::string& key,
                         const core::RoundResult& r) {
    if (chained) chained(key, r);
    LeafFacts f;
    f.landed = r.success;
    for (const RaceFinding& fd : r.detect.findings) {
      if (fd.path == dcfg.watched_path) f.flagged = true;
    }
    f.report = r.detect;
    std::lock_guard<std::mutex> lock(mu);
    leaves.emplace(key, std::move(f));
  };

  CrossCheckResult out;
  out.explore = explore::explore(dcfg, ec);

  for (const auto& [key, f] : leaves) {
    ++out.leaves;
    out.report.merge(f.report);
    if (f.flagged) ++out.flagged;
    if (f.landed) {
      ++out.landed;
      if (f.flagged) {
        ++out.landed_flagged;
      } else if (static_cast<int>(out.violations.size()) <
                 kMaxViolationTokens) {
        out.violations.push_back(key);
      }
    } else if (f.flagged) {
      ++out.flagged_not_landed;
      for (const RaceFinding& fd : f.report.findings) {
        if (fd.path != dcfg.watched_path) continue;
        ++out.fp_justifications[fd.pair_key() + "|" + fd.justification()];
      }
    }
  }
  return out;
}

std::string CrossCheckResult::summary() const {
  std::string out = strfmt(
      "leaves=%d landed=%d landed-flagged=%d/%d flagged=%d "
      "flagged-not-landed=%d violations=%d",
      leaves, landed, landed_flagged, landed, flagged, flagged_not_landed,
      static_cast<int>(landed - landed_flagged));
  if (!fp_justifications.empty()) {
    out += "\nfalse-positive audit (flagged leaves where the attack lost):";
    for (const auto& [k, v] : fp_justifications) {
      out += strfmt("\n  %s x%llu", k.c_str(),
                    static_cast<unsigned long long>(v));
    }
  }
  return out;
}

}  // namespace tocttou::detect
