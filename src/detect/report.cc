#include "tocttou/detect/detector.h"

#include "tocttou/common/strings.h"

namespace tocttou::detect {

std::string RaceFinding::justification() const {
  if (ordered_after_check && ordered_before_use) {
    return "serialized inside the window: kernel edges order "
           "check -> mutation -> use, the landing interleaving";
  }
  if (ordered_after_check) {
    return "ordered after the check by kernel edges, unordered with the use";
  }
  if (ordered_before_use) {
    return "ordered before the use by kernel edges, unordered with the check";
  }
  return "fully concurrent: no happens-before path between the mutation "
         "and either end of the window";
}

void DetectReport::merge(const DetectReport& other) {
  rounds += other.rounds;
  sync_events += other.sync_events;
  windows += other.windows;
  mutations += other.mutations;
  races += other.races;
  rounds_with_race += other.rounds_with_race;
  for (const auto& [k, v] : other.pair_windows) pair_windows[k] += v;
  for (const auto& [k, v] : other.pair_races) pair_races[k] += v;
  for (const auto& [k, v] : other.ordered_mutations) {
    ordered_mutations[k] += v;
  }
  for (const auto& f : other.findings) {
    if (findings.size() >= static_cast<std::size_t>(kMaxFindings)) break;
    findings.push_back(f);
  }
}

std::string DetectReport::summary() const {
  auto u = [](std::uint64_t v) { return static_cast<unsigned long long>(v); };
  std::string out = strfmt(
      "%llu races / %llu windows / %llu mutations over %llu rounds "
      "(%llu rounds flagged)",
      u(races), u(windows), u(mutations), u(rounds), u(rounds_with_race));
  if (!pair_races.empty()) {
    out += "; racing pairs:";
    for (const auto& [k, v] : pair_races) {
      out += strfmt(" <%s>=%llu", k.c_str(), u(v));
    }
  }
  if (!ordered_mutations.empty()) {
    out += "; suppressed:";
    for (const auto& [k, v] : ordered_mutations) {
      out += strfmt(" %s=%llu", k.c_str(), u(v));
    }
  }
  return out;
}

std::string DetectReport::to_csv() const {
  std::string out =
      "victim,check,use,path,check_exit_us,use_enter_us,mutator,"
      "mutator_uid,mutator_call,mutation_enter_us,ordered_after_check,"
      "ordered_before_use,justification\n";
  for (const RaceFinding& f : findings) {
    out += strfmt("%u,%s,%s,%s,%.3f,%.3f,%u,%u,%s,%.3f,%d,%d,%s\n",
                  f.victim, csv_escape(f.check_call).c_str(),
                  csv_escape(f.use_call).c_str(), csv_escape(f.path).c_str(),
                  f.check_exit.us(), f.use_enter.us(), f.mutator,
                  f.mutator_uid, csv_escape(f.mutator_call).c_str(),
                  f.mutation_enter.us(), f.ordered_after_check ? 1 : 0,
                  f.ordered_before_use ? 1 : 0,
                  csv_escape(f.justification()).c_str());
  }
  return out;
}

const char* to_string(SyncKind k) {
  switch (k) {
    case SyncKind::proc_start: return "proc_start";
    case SyncKind::proc_exit: return "proc_exit";
    case SyncKind::sem_acquire: return "sem_acquire";
    case SyncKind::sem_release: return "sem_release";
    case SyncKind::flag_set: return "flag_set";
    case SyncKind::flag_wake: return "flag_wake";
    case SyncKind::sc_enter: return "sc_enter";
    case SyncKind::sc_exit: return "sc_exit";
  }
  return "?";
}

}  // namespace tocttou::detect
