#include "tocttou/detect/detector.h"

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "tocttou/common/error.h"
#include "tocttou/detect/classify.h"
#include "tocttou/detect/vector_clock.h"

namespace tocttou::detect {
namespace {

// Causal position of one completed syscall: full clock snapshot at
// sc_enter plus the process's own event counters at the two brackets.
// Event (P, k) happens-before a syscall boundary iff the boundary's
// snapshot has seen counter k of P.
struct CallClock {
  VectorClock enter_vc;
  std::uint32_t enter_k = 0;
  std::uint32_t exit_k = 0;
};

struct Replay {
  std::vector<VectorClock> vc;                 // per process index
  std::vector<std::uint32_t> uid;              // from proc_start
  std::vector<std::vector<CallClock>> calls;   // per pid, completed calls
};

std::size_t pidx(trace::Pid p) { return static_cast<std::size_t>(p) - 1; }

// Single pass over the append-ordered log. Release-style events
// (sem_release, flag_set) tick first and then publish the releaser's
// full clock under the object's name; acquire-style events (sem_acquire,
// flag_wake) join from the published clock and then tick — the standard
// message-passing vector-clock algebra with the object as the channel.
Replay replay_sync(const SyncLog& sync) {
  Replay st;
  std::map<std::string, VectorClock> sem_released;
  std::map<std::string, VectorClock> flag_published;
  std::vector<char> in_call;

  auto grow = [&](std::size_t i) {
    if (st.vc.size() <= i) {
      st.vc.resize(i + 1);
      st.uid.resize(i + 1, 0);
      st.calls.resize(i + 1);
      in_call.resize(i + 1, 0);
    }
  };

  for (const SyncEvent& e : sync.events()) {
    TOCTTOU_CHECK(e.pid != 0, "sync event with null pid");
    const std::size_t i = pidx(e.pid);
    grow(i);
    VectorClock& v = st.vc[i];
    switch (e.kind) {
      case SyncKind::proc_start:
        st.uid[i] = e.uid;
        v.tick(i);
        break;
      case SyncKind::proc_exit:
        v.tick(i);
        break;
      case SyncKind::sem_acquire: {
        auto it = sem_released.find(e.obj);
        if (it != sem_released.end()) v.join(it->second);
        v.tick(i);
        break;
      }
      case SyncKind::sem_release:
        v.tick(i);
        sem_released[e.obj] = v;
        break;
      case SyncKind::flag_set:
        v.tick(i);
        flag_published[e.obj] = v;
        break;
      case SyncKind::flag_wake: {
        auto it = flag_published.find(e.obj);
        if (it != flag_published.end()) v.join(it->second);
        v.tick(i);
        break;
      }
      case SyncKind::sc_enter: {
        TOCTTOU_CHECK(!in_call[i], "nested sc_enter for one pid");
        in_call[i] = 1;
        CallClock c;
        c.enter_k = v.tick(i);
        c.enter_vc = v;
        st.calls[i].push_back(std::move(c));
        break;
      }
      case SyncKind::sc_exit:
        TOCTTOU_CHECK(in_call[i], "sc_exit without sc_enter");
        in_call[i] = 0;
        st.calls[i].back().exit_k = v.tick(i);
        break;
    }
  }
  // A round can end with a syscall still in service; it never journaled,
  // so drop its dangling bracket before pairing.
  for (std::size_t i = 0; i < st.calls.size(); ++i) {
    if (in_call[i]) st.calls[i].pop_back();
  }
  return st;
}

// A <check, use> window rediscovered from one process's record stream.
struct Window {
  std::size_t pid_i;       // victim process index
  std::size_t check_rec;   // journal indices
  std::size_t use_rec;
  std::size_t check_call;  // per-pid call indices (into Replay::calls)
  std::size_t use_call;
  std::string path;
};

}  // namespace

DetectReport analyze_round(const SyncLog& sync,
                           const trace::SyscallJournal& journal) {
  DetectReport rep;
  rep.rounds = 1;
  rep.sync_events = sync.events().size();

  Replay st = replay_sync(sync);
  const auto& recs = journal.records();

  // Pair the i-th journal record of each pid with its i-th completed
  // call bracket (both streams are per-pid program order).
  std::vector<std::size_t> call_of(recs.size(), 0);
  std::vector<std::vector<std::size_t>> by_pid(st.calls.size());
  {
    std::vector<std::size_t> next(st.calls.size(), 0);
    for (std::size_t r = 0; r < recs.size(); ++r) {
      const std::size_t i = pidx(recs[r].pid);
      TOCTTOU_CHECK(i < st.calls.size() && next[i] < st.calls[i].size(),
                    "sync log and syscall journal out of step");
      call_of[r] = next[i]++;
      by_pid[i].push_back(r);
    }
    for (std::size_t i = 0; i < next.size(); ++i) {
      TOCTTOU_CHECK(next[i] == st.calls[i].size(),
                    "sync log has calls the journal never recorded");
    }
  }

  // Attacker-writable mutations: successful mutators issued by a
  // non-root process.
  std::vector<std::size_t> mutations;
  for (std::size_t r = 0; r < recs.size(); ++r) {
    if (is_mutator_name(recs[r].name) && recs[r].result == Errno::ok &&
        st.uid[pidx(recs[r].pid)] != 0) {
      mutations.push_back(r);
    }
  }
  rep.mutations = mutations.size();

  // Rediscover windows per process: a use pairs with the latest
  // still-valid check of any name it acts on. A re-check overwrites the
  // entry (window reset); the process's own unlink/rename retires the
  // name's invariant.
  struct Check {
    std::size_t rec = 0;
    std::size_t call = 0;
  };
  std::vector<Window> windows;
  std::vector<std::string_view> names;
  for (std::size_t i = 0; i < by_pid.size(); ++i) {
    std::map<std::string, Check, std::less<>> last_check;
    for (std::size_t r : by_pid[i]) {
      const trace::SyscallRecord& rec = recs[r];
      if (is_use_name(rec.name)) {
        acted_names(rec, &names);
        for (std::string_view n : names) {
          auto it = last_check.find(n);
          if (it == last_check.end()) continue;
          if (rec.enter <= recs[it->second.rec].exit) continue;
          windows.push_back({i, it->second.rec, r, it->second.call,
                             call_of[r], std::string(n)});
        }
      }
      if (rec.result == Errno::ok) {
        if (rec.name == "rename" || rec.name == "unlink") {
          last_check.erase(rec.path);
        }
        if (is_check_name(rec.name)) {
          established_names(rec, &names);
          for (std::string_view n : names) {
            last_check[std::string(n)] = Check{r, call_of[r]};
          }
        }
      }
    }
  }

  for (const Window& w : windows) {
    const trace::SyscallRecord& crec = recs[w.check_rec];
    const trace::SyscallRecord& urec = recs[w.use_rec];
    const CallClock& check = st.calls[w.pid_i][w.check_call];
    const CallClock& use = st.calls[w.pid_i][w.use_call];
    const std::string pair = crec.name + "," + urec.name;
    ++rep.windows;
    ++rep.pair_windows[pair];

    // The inode the check observed, for symlink-alias matching.
    const std::optional<std::uint64_t> checked_ino =
        crec.st_ino ? crec.st_ino : crec.applied_ino;

    bool raced = false;
    for (std::size_t m : mutations) {
      const trace::SyscallRecord& mrec = recs[m];
      const std::size_t qi = pidx(mrec.pid);
      if (qi == w.pid_i) continue;

      // Same resolved name, or same inode through a different name.
      mutated_names(mrec, &names);
      bool hits = false;
      for (std::string_view n : names) hits = hits || n == w.path;
      if (!hits && checked_ino && mrec.applied_ino &&
          *mrec.applied_ino == *checked_ino) {
        hits = true;
      }
      if (!hits) continue;

      const CallClock& mut = st.calls[qi][call_of[m]];
      // M happens-before C: the mutation's exit was visible when the
      // check entered. U happens-before M symmetrically.
      if (check.enter_vc.at(qi) >= mut.exit_k) {
        ++rep.ordered_mutations["mutation-before-check"];
        continue;
      }
      if (mut.enter_vc.at(w.pid_i) >= use.exit_k) {
        ++rep.ordered_mutations["use-before-mutation"];
        continue;
      }

      raced = true;
      ++rep.races;
      ++rep.pair_races[pair];
      RaceFinding f;
      f.victim = crec.pid;
      f.check_call = crec.name;
      f.use_call = urec.name;
      f.path = w.path;
      f.check_exit = crec.exit;
      f.use_enter = urec.enter;
      f.mutator = mrec.pid;
      f.mutator_uid = st.uid[qi];
      f.mutator_call = mrec.name;
      f.mutation_enter = mrec.enter;
      f.ordered_after_check = mut.enter_vc.at(w.pid_i) >= check.exit_k;
      f.ordered_before_use = use.enter_vc.at(qi) >= mut.exit_k;
      rep.findings.push_back(std::move(f));
    }
    if (raced) rep.rounds_with_race = 1;
  }
  return rep;
}

}  // namespace tocttou::detect
