#include "tocttou/detect/classify.h"

#include <algorithm>
#include <array>

namespace tocttou::detect {
namespace {

// The modeled syscall surface (fs/ops.cc). Fd-based calls (read, write,
// close, fchown, fchmod) bind to an inode the process already holds, so
// no pathname invariant is involved; they classify as none of the
// three. Kept sorted for readability, matched linearly — the tables are
// tiny and this is not the hot path.
constexpr std::array<std::string_view, 9> kChecks = {
    "access", "link",     "lstat", "mkdir", "open",
    "readlink", "rename", "stat",  "symlink"};

constexpr std::array<std::string_view, 8> kUses = {
    "chmod", "chown", "link",  "mkdir",
    "open",  "rename", "symlink", "unlink"};

constexpr std::array<std::string_view, 7> kMutators = {
    "chmod", "chown", "link", "mkdir", "rename", "symlink", "unlink"};

template <std::size_t N>
bool contains(const std::array<std::string_view, N>& set,
              std::string_view name) {
  return std::find(set.begin(), set.end(), name) != set.end();
}

}  // namespace

bool is_check_name(std::string_view name) { return contains(kChecks, name); }
bool is_use_name(std::string_view name) { return contains(kUses, name); }
bool is_mutator_name(std::string_view name) {
  return contains(kMutators, name);
}

void acted_names(const trace::SyscallRecord& r,
                 std::vector<std::string_view>* out) {
  out->clear();
  if (!r.path.empty()) out->push_back(r.path);
  // rename(old, new) depends on both name bindings; link(old, new)
  // dereferences oldpath and creates newpath. symlink(target, linkpath)
  // journals the TARGET as path2 — a string stored in the new link, not
  // a name the call resolves — so it is excluded.
  if ((r.name == "rename" || r.name == "link") && !r.path2.empty()) {
    out->push_back(r.path2);
  }
}

void established_names(const trace::SyscallRecord& r,
                       std::vector<std::string_view>* out) {
  out->clear();
  if (r.name == "rename") {
    // The object now lives at newpath; oldpath's binding is gone.
    if (!r.path2.empty()) out->push_back(r.path2);
    return;
  }
  if (r.name == "link") {
    // Vouches both for the oldpath it dereferenced and the newpath it
    // created.
    if (!r.path.empty()) out->push_back(r.path);
    if (!r.path2.empty()) out->push_back(r.path2);
    return;
  }
  if (!r.path.empty()) out->push_back(r.path);
}

void mutated_names(const trace::SyscallRecord& r,
                   std::vector<std::string_view>* out) {
  out->clear();
  if (r.name == "rename") {
    // Both ends change: oldpath disappears, newpath is rebound.
    if (!r.path.empty()) out->push_back(r.path);
    if (!r.path2.empty()) out->push_back(r.path2);
    return;
  }
  if (r.name == "link") {
    // Only the created newpath gains a binding; oldpath is untouched.
    if (!r.path2.empty()) out->push_back(r.path2);
    return;
  }
  if (!r.path.empty()) out->push_back(r.path);
}

}  // namespace tocttou::detect
