#include "tocttou/sched/linux_sched.h"

#include <algorithm>
#include <bit>

#include "tocttou/common/error.h"
#include "tocttou/sim/clone.h"

namespace tocttou::sched {

using sim::CpuId;
using sim::Pid;
using sim::Process;

namespace {
LinuxLikeScheduler::RunQueueImpl g_default_impl =
    LinuxLikeScheduler::RunQueueImpl::bitmap;
}  // namespace

void LinuxLikeScheduler::set_default_impl(RunQueueImpl impl) {
  g_default_impl = impl;
}

LinuxLikeScheduler::RunQueueImpl LinuxLikeScheduler::default_impl() {
  return g_default_impl;
}

LinuxLikeScheduler::LinuxLikeScheduler(LinuxSchedParams params)
    : LinuxLikeScheduler(params, g_default_impl) {}

LinuxLikeScheduler::LinuxLikeScheduler(LinuxSchedParams params,
                                       RunQueueImpl impl)
    : params_(params), impl_(impl) {}

void LinuxLikeScheduler::init(int n_cpus) {
  if (impl_ == RunQueueImpl::legacy_map) {
    queues_.assign(static_cast<std::size_t>(n_cpus), RunQueue{});
  } else {
    bqueues_.assign(static_cast<std::size_t>(n_cpus), BitmapQueue{});
    nodes_.clear();
  }
}

LinuxLikeScheduler::LinuxLikeScheduler(const LinuxLikeScheduler& o,
                                       sim::CloneMap& m)
    : params_(o.params_), impl_(o.impl_) {
  if (impl_ == RunQueueImpl::legacy_map) {
    queues_.reserve(o.queues_.size());
    for (const RunQueue& src : o.queues_) {
      RunQueue q;
      q.size = src.size;
      for (const auto& [prio, fifo] : src.by_prio) {
        auto& dst = q.by_prio[prio];
        for (Process* p : fifo) dst.push_back(m.remap(p));
      }
      queues_.push_back(std::move(q));
    }
    return;
  }
  bqueues_ = o.bqueues_;
  nodes_ = o.nodes_;
  // Links are Pids — stable across the clone (the process table is copied
  // index-for-index); only the cached Process* of queued nodes remaps.
  for (Node& n : nodes_) {
    if (n.cpu != sim::kNoCpu) n.proc = m.remap(n.proc);
  }
}

std::unique_ptr<sim::Scheduler> LinuxLikeScheduler::clone(
    sim::CloneMap& m) const {
  return std::unique_ptr<sim::Scheduler>(new LinuxLikeScheduler(*this, m));
}

// ---------------------------------------------------------------------------
// legacy_map structure helpers
// ---------------------------------------------------------------------------

LinuxLikeScheduler::RunQueue& LinuxLikeScheduler::rq(CpuId cpu) {
  TOCTTOU_CHECK(cpu >= 0 && static_cast<std::size_t>(cpu) < queues_.size(),
                "bad cpu id in scheduler");
  return queues_[static_cast<std::size_t>(cpu)];
}

const LinuxLikeScheduler::RunQueue& LinuxLikeScheduler::rq(CpuId cpu) const {
  TOCTTOU_CHECK(cpu >= 0 && static_cast<std::size_t>(cpu) < queues_.size(),
                "bad cpu id in scheduler");
  return queues_[static_cast<std::size_t>(cpu)];
}

// ---------------------------------------------------------------------------
// bitmap structure helpers
// ---------------------------------------------------------------------------

LinuxLikeScheduler::BitmapQueue& LinuxLikeScheduler::bq(CpuId cpu) {
  TOCTTOU_CHECK(cpu >= 0 && static_cast<std::size_t>(cpu) < bqueues_.size(),
                "bad cpu id in scheduler");
  return bqueues_[static_cast<std::size_t>(cpu)];
}

const LinuxLikeScheduler::BitmapQueue& LinuxLikeScheduler::bq(
    CpuId cpu) const {
  TOCTTOU_CHECK(cpu >= 0 && static_cast<std::size_t>(cpu) < bqueues_.size(),
                "bad cpu id in scheduler");
  return bqueues_[static_cast<std::size_t>(cpu)];
}

LinuxLikeScheduler::Node& LinuxLikeScheduler::node(Pid pid) {
  TOCTTOU_CHECK(pid != sim::kNoPid, "node lookup for pid 0");
  if (nodes_.size() < pid) nodes_.resize(pid);
  return nodes_[pid - 1];
}

int LinuxLikeScheduler::level_of(const Process& p) {
  const int level = p.priority() + kPrioBias;
  TOCTTOU_CHECK(level >= 0 && level < kLevels,
                "process priority outside the bitmap range");
  return level;
}

void LinuxLikeScheduler::bq_link(BitmapQueue& q, Process& p, bool front) {
  const Pid pid = p.pid();
  Node& n = node(pid);
  TOCTTOU_CHECK(n.cpu == sim::kNoCpu, "process enqueued twice");
  const int level = level_of(p);
  n.proc = &p;
  n.level = level;
  const auto li = static_cast<std::size_t>(level);
  if (q.head[li] == sim::kNoPid) {
    n.prev = n.next = sim::kNoPid;
    q.head[li] = q.tail[li] = pid;
    q.words[static_cast<std::size_t>(level / 64)] |= 1ull << (level % 64);
  } else if (front) {
    n.prev = sim::kNoPid;
    n.next = q.head[li];
    nodes_[q.head[li] - 1].prev = pid;
    q.head[li] = pid;
  } else {
    n.next = sim::kNoPid;
    n.prev = q.tail[li];
    nodes_[q.tail[li] - 1].next = pid;
    q.tail[li] = pid;
  }
  ++q.size;
}

void LinuxLikeScheduler::bq_unlink(BitmapQueue& q, Node& n) {
  const auto li = static_cast<std::size_t>(n.level);
  const Pid pid = n.proc->pid();
  if (n.prev != sim::kNoPid) {
    nodes_[n.prev - 1].next = n.next;
  } else {
    TOCTTOU_CHECK(q.head[li] == pid, "run-queue link corruption");
    q.head[li] = n.next;
  }
  if (n.next != sim::kNoPid) {
    nodes_[n.next - 1].prev = n.prev;
  } else {
    TOCTTOU_CHECK(q.tail[li] == pid, "run-queue link corruption");
    q.tail[li] = n.prev;
  }
  if (q.head[li] == sim::kNoPid) {
    q.words[li / 64] &= ~(1ull << (n.level % 64));
  }
  n.proc = nullptr;
  n.prev = n.next = sim::kNoPid;
  n.cpu = sim::kNoCpu;
  --q.size;
}

int LinuxLikeScheduler::highest_level(const BitmapQueue& q) {
  for (int w = kWords - 1; w >= 0; --w) {
    const std::uint64_t word = q.words[static_cast<std::size_t>(w)];
    if (word != 0) return w * 64 + 63 - std::countl_zero(word);
  }
  return -1;
}

std::size_t LinuxLikeScheduler::depth_of(CpuId cpu) const {
  return impl_ == RunQueueImpl::legacy_map ? rq(cpu).size : bq(cpu).size;
}

// ---------------------------------------------------------------------------
// policy
// ---------------------------------------------------------------------------

CpuId LinuxLikeScheduler::place(const Process& p,
                                const std::vector<CpuId>& idle_cpus,
                                const std::vector<CpuId>& allowed_cpus) {
  TOCTTOU_CHECK(!allowed_cpus.empty(), "placement with empty affinity");
  // Prefer the last CPU if it is idle (cache affinity), then any idle CPU.
  if (!idle_cpus.empty()) {
    if (std::find(idle_cpus.begin(), idle_cpus.end(), p.last_cpu()) !=
        idle_cpus.end()) {
      return p.last_cpu();
    }
    return idle_cpus.front();
  }
  // No idle CPU: stay where we last ran if allowed, else least loaded.
  if (std::find(allowed_cpus.begin(), allowed_cpus.end(), p.last_cpu()) !=
      allowed_cpus.end()) {
    return p.last_cpu();
  }
  CpuId best = allowed_cpus.front();
  std::size_t best_depth = depth_of(best);
  for (CpuId c : allowed_cpus) {
    if (depth_of(c) < best_depth) {
      best = c;
      best_depth = depth_of(c);
    }
  }
  return best;
}

void LinuxLikeScheduler::enqueue(Process& p, CpuId cpu, bool front) {
  if (impl_ == RunQueueImpl::legacy_map) {
    auto& q = rq(cpu);
    auto& fifo = q.by_prio[p.priority()];
    if (front) {
      fifo.push_front(&p);
    } else {
      fifo.push_back(&p);
    }
    ++q.size;
    return;
  }
  BitmapQueue& q = bq(cpu);
  bq_link(q, p, front);
  node(p.pid()).cpu = cpu;
}

Process* LinuxLikeScheduler::pick_next(CpuId cpu) {
  if (impl_ == RunQueueImpl::legacy_map) {
    auto& q = rq(cpu);
    while (!q.by_prio.empty()) {
      auto it = q.by_prio.begin();
      auto& fifo = it->second;
      if (fifo.empty()) {
        q.by_prio.erase(it);
        continue;
      }
      Process* p = fifo.front();
      fifo.pop_front();
      --q.size;
      if (fifo.empty()) q.by_prio.erase(it);
      if (p->state() == sim::ProcState::ready) return p;
      // Stale entry (e.g. removed process); skip it.
    }
    return nullptr;
  }
  BitmapQueue& q = bq(cpu);
  int level;
  while ((level = highest_level(q)) >= 0) {
    Node& n = nodes_[q.head[static_cast<std::size_t>(level)] - 1];
    Process* p = n.proc;
    bq_unlink(q, n);
    if (p->state() == sim::ProcState::ready) return p;
    // Stale entry (e.g. removed process); skip it.
  }
  return nullptr;
}

Process* LinuxLikeScheduler::steal(CpuId thief) {
  // Pull from the most loaded queue; take the TAIL of its lowest
  // priority level (the task that would otherwise wait longest), if its
  // affinity allows the thief CPU.
  const std::size_t n_cpus =
      impl_ == RunQueueImpl::legacy_map ? queues_.size() : bqueues_.size();
  CpuId victim_cpu = sim::kNoCpu;
  std::size_t best = 0;
  for (std::size_t c = 0; c < n_cpus; ++c) {
    if (static_cast<CpuId>(c) == thief) continue;
    const std::size_t depth = depth_of(static_cast<CpuId>(c));
    if (depth > best) {
      best = depth;
      victim_cpu = static_cast<CpuId>(c);
    }
  }
  if (victim_cpu == sim::kNoCpu) return nullptr;
  if (impl_ == RunQueueImpl::legacy_map) {
    auto& q = rq(victim_cpu);
    for (auto it = q.by_prio.rbegin(); it != q.by_prio.rend(); ++it) {
      auto& fifo = it->second;
      for (auto pit = fifo.rbegin(); pit != fifo.rend(); ++pit) {
        Process* p = *pit;
        if (p->state() == sim::ProcState::ready &&
            (p->affinity_mask() & (1ull << thief))) {
          fifo.erase(std::next(pit).base());
          --q.size;
          return p;
        }
      }
    }
    return nullptr;
  }
  BitmapQueue& q = bq(victim_cpu);
  for (int w = 0; w < kWords; ++w) {
    std::uint64_t word = q.words[static_cast<std::size_t>(w)];
    while (word != 0) {
      const int level = w * 64 + std::countr_zero(word);
      word &= word - 1;  // clear the lowest set bit
      for (Pid pid = q.tail[static_cast<std::size_t>(level)];
           pid != sim::kNoPid;) {
        Node& n = nodes_[pid - 1];
        const Pid prev = n.prev;
        Process* p = n.proc;
        if (p->state() == sim::ProcState::ready &&
            (p->affinity_mask() & (1ull << thief))) {
          bq_unlink(q, n);
          return p;
        }
        pid = prev;
      }
    }
  }
  return nullptr;
}

std::vector<Process*> LinuxLikeScheduler::pick_candidates(CpuId cpu) const {
  std::vector<Process*> out;
  if (impl_ == RunQueueImpl::legacy_map) {
    const auto& q = rq(cpu);
    for (const auto& [prio, fifo] : q.by_prio) {
      for (Process* p : fifo) {
        if (p->state() == sim::ProcState::ready) out.push_back(p);
      }
      if (!out.empty()) return out;  // highest level with a ready task
    }
    return out;
  }
  const BitmapQueue& q = bq(cpu);
  for (int w = kWords - 1; w >= 0; --w) {
    std::uint64_t word = q.words[static_cast<std::size_t>(w)];
    while (word != 0) {
      const int level = w * 64 + 63 - std::countl_zero(word);
      word &= ~(1ull << (level % 64));
      for (Pid pid = q.head[static_cast<std::size_t>(level)];
           pid != sim::kNoPid; pid = nodes_[pid - 1].next) {
        Process* p = nodes_[pid - 1].proc;
        if (p->state() == sim::ProcState::ready) out.push_back(p);
      }
      if (!out.empty()) return out;  // highest level with a ready task
    }
  }
  return out;
}

bool LinuxLikeScheduler::take(Process& p, CpuId cpu) {
  if (impl_ == RunQueueImpl::legacy_map) {
    auto& q = rq(cpu);
    const auto it = q.by_prio.find(p.priority());
    if (it == q.by_prio.end()) return false;
    auto& fifo = it->second;
    const auto pit = std::find(fifo.begin(), fifo.end(), &p);
    if (pit == fifo.end()) return false;
    fifo.erase(pit);
    --q.size;
    if (fifo.empty()) q.by_prio.erase(it);
    return true;
  }
  if (p.pid() == sim::kNoPid || nodes_.size() < p.pid()) return false;
  Node& n = nodes_[p.pid() - 1];
  if (n.cpu != cpu) return false;
  bq_unlink(bq(cpu), n);
  return true;
}

void LinuxLikeScheduler::remove(const Process& p) {
  if (impl_ == RunQueueImpl::legacy_map) {
    for (auto& q : queues_) {
      for (auto& [prio, fifo] : q.by_prio) {
        auto it = std::find(fifo.begin(), fifo.end(), &p);
        if (it != fifo.end()) {
          fifo.erase(it);
          --q.size;
          return;
        }
      }
    }
    return;
  }
  if (p.pid() == sim::kNoPid || nodes_.size() < p.pid()) return;
  Node& n = nodes_[p.pid() - 1];
  if (n.cpu == sim::kNoCpu) return;
  bq_unlink(bq(n.cpu), n);
}

bool LinuxLikeScheduler::should_preempt(const Process& woken,
                                        const Process& running) const {
  if (woken.priority() > running.priority()) return true;
  if (params_.wake_preempts_equal_priority &&
      woken.priority() == running.priority()) {
    return true;
  }
  return false;
}

bool LinuxLikeScheduler::should_yield_on_expiry(const Process& running,
                                                CpuId cpu) const {
  if (impl_ == RunQueueImpl::legacy_map) {
    const auto& q = rq(cpu);
    for (const auto& [prio, fifo] : q.by_prio) {
      if (prio < running.priority()) break;  // map is sorted descending
      for (const Process* p : fifo) {
        if (p->state() == sim::ProcState::ready) return true;
      }
    }
    return false;
  }
  const BitmapQueue& q = bq(cpu);
  const int floor = running.priority() + kPrioBias;
  for (int w = kWords - 1; w >= floor / 64; --w) {
    std::uint64_t word = q.words[static_cast<std::size_t>(w)];
    if (w == floor / 64 && floor % 64 != 0) {
      word &= ~0ull << (floor % 64);
    }
    while (word != 0) {
      const int level = w * 64 + 63 - std::countl_zero(word);
      word &= ~(1ull << (level % 64));
      for (Pid pid = q.head[static_cast<std::size_t>(level)];
           pid != sim::kNoPid; pid = nodes_[pid - 1].next) {
        if (nodes_[pid - 1].proc->state() == sim::ProcState::ready) {
          return true;
        }
      }
    }
  }
  return false;
}

Duration LinuxLikeScheduler::fresh_slice(const Process& p) const {
  (void)p;
  return params_.timeslice;
}

std::size_t LinuxLikeScheduler::queue_depth(CpuId cpu) const {
  return depth_of(cpu);
}

void LinuxLikeScheduler::hash_state(StateHasher& h) const {
  if (impl_ == RunQueueImpl::legacy_map) {
    h.u64(queues_.size());
    for (const RunQueue& q : queues_) {
      h.u64(q.size);
      h.u64(q.by_prio.size());
      for (const auto& [prio, fifo] : q.by_prio) {
        h.i64(prio);
        h.u64(fifo.size());
        for (const sim::Process* p : fifo) h.u64(p->pid());
      }
    }
    return;
  }
  // Same logical content as the legacy digest: per CPU, the levels that
  // hold entries, in descending priority, each with its FIFO of pids.
  // (The bitmap never retains a drained level, so level count == set-bit
  // count.)
  h.u64(bqueues_.size());
  for (const BitmapQueue& q : bqueues_) {
    h.u64(q.size);
    std::uint64_t levels = 0;
    for (const std::uint64_t w : q.words) {
      levels += static_cast<std::uint64_t>(std::popcount(w));
    }
    h.u64(levels);
    for (int w = kWords - 1; w >= 0; --w) {
      std::uint64_t word = q.words[static_cast<std::size_t>(w)];
      while (word != 0) {
        const int level = w * 64 + 63 - std::countl_zero(word);
        word &= ~(1ull << (level % 64));
        h.i64(level - kPrioBias);
        std::uint64_t len = 0;
        for (Pid pid = q.head[static_cast<std::size_t>(level)];
             pid != sim::kNoPid; pid = nodes_[pid - 1].next) {
          ++len;
        }
        h.u64(len);
        for (Pid pid = q.head[static_cast<std::size_t>(level)];
             pid != sim::kNoPid; pid = nodes_[pid - 1].next) {
          h.u64(pid);
        }
      }
    }
  }
}

}  // namespace tocttou::sched
