#include "tocttou/sched/linux_sched.h"

#include <algorithm>

#include "tocttou/common/error.h"
#include "tocttou/sim/clone.h"

namespace tocttou::sched {

using sim::CpuId;
using sim::Process;

LinuxLikeScheduler::LinuxLikeScheduler(LinuxSchedParams params)
    : params_(params) {}

void LinuxLikeScheduler::init(int n_cpus) {
  queues_.assign(static_cast<std::size_t>(n_cpus), RunQueue{});
}

LinuxLikeScheduler::LinuxLikeScheduler(const LinuxLikeScheduler& o,
                                       sim::CloneMap& m)
    : params_(o.params_) {
  queues_.reserve(o.queues_.size());
  for (const RunQueue& src : o.queues_) {
    RunQueue q;
    q.size = src.size;
    for (const auto& [prio, fifo] : src.by_prio) {
      auto& dst = q.by_prio[prio];
      for (Process* p : fifo) dst.push_back(m.remap(p));
    }
    queues_.push_back(std::move(q));
  }
}

std::unique_ptr<sim::Scheduler> LinuxLikeScheduler::clone(
    sim::CloneMap& m) const {
  return std::unique_ptr<sim::Scheduler>(new LinuxLikeScheduler(*this, m));
}

LinuxLikeScheduler::RunQueue& LinuxLikeScheduler::rq(CpuId cpu) {
  TOCTTOU_CHECK(cpu >= 0 && static_cast<std::size_t>(cpu) < queues_.size(),
                "bad cpu id in scheduler");
  return queues_[static_cast<std::size_t>(cpu)];
}

const LinuxLikeScheduler::RunQueue& LinuxLikeScheduler::rq(CpuId cpu) const {
  TOCTTOU_CHECK(cpu >= 0 && static_cast<std::size_t>(cpu) < queues_.size(),
                "bad cpu id in scheduler");
  return queues_[static_cast<std::size_t>(cpu)];
}

CpuId LinuxLikeScheduler::place(const Process& p,
                                const std::vector<CpuId>& idle_cpus,
                                const std::vector<CpuId>& allowed_cpus) {
  TOCTTOU_CHECK(!allowed_cpus.empty(), "placement with empty affinity");
  // Prefer the last CPU if it is idle (cache affinity), then any idle CPU.
  if (!idle_cpus.empty()) {
    if (std::find(idle_cpus.begin(), idle_cpus.end(), p.last_cpu()) !=
        idle_cpus.end()) {
      return p.last_cpu();
    }
    return idle_cpus.front();
  }
  // No idle CPU: stay where we last ran if allowed, else least loaded.
  if (std::find(allowed_cpus.begin(), allowed_cpus.end(), p.last_cpu()) !=
      allowed_cpus.end()) {
    return p.last_cpu();
  }
  CpuId best = allowed_cpus.front();
  std::size_t best_depth = rq(best).size;
  for (CpuId c : allowed_cpus) {
    if (rq(c).size < best_depth) {
      best = c;
      best_depth = rq(c).size;
    }
  }
  return best;
}

void LinuxLikeScheduler::enqueue(Process& p, CpuId cpu, bool front) {
  auto& q = rq(cpu);
  auto& fifo = q.by_prio[p.priority()];
  if (front) {
    fifo.push_front(&p);
  } else {
    fifo.push_back(&p);
  }
  ++q.size;
}

Process* LinuxLikeScheduler::pick_next(CpuId cpu) {
  auto& q = rq(cpu);
  while (!q.by_prio.empty()) {
    auto it = q.by_prio.begin();
    auto& fifo = it->second;
    if (fifo.empty()) {
      q.by_prio.erase(it);
      continue;
    }
    Process* p = fifo.front();
    fifo.pop_front();
    --q.size;
    if (fifo.empty()) q.by_prio.erase(it);
    if (p->state() == sim::ProcState::ready) return p;
    // Stale entry (e.g. removed process); skip it.
  }
  return nullptr;
}

Process* LinuxLikeScheduler::steal(CpuId thief) {
  // Pull from the most loaded queue; take the TAIL of its lowest
  // priority level (the task that would otherwise wait longest), if its
  // affinity allows the thief CPU.
  CpuId victim_cpu = sim::kNoCpu;
  std::size_t best = 0;
  for (std::size_t c = 0; c < queues_.size(); ++c) {
    if (static_cast<CpuId>(c) == thief) continue;
    if (queues_[c].size > best) {
      best = queues_[c].size;
      victim_cpu = static_cast<CpuId>(c);
    }
  }
  if (victim_cpu == sim::kNoCpu) return nullptr;
  auto& q = rq(victim_cpu);
  for (auto it = q.by_prio.rbegin(); it != q.by_prio.rend(); ++it) {
    auto& fifo = it->second;
    for (auto pit = fifo.rbegin(); pit != fifo.rend(); ++pit) {
      Process* p = *pit;
      if (p->state() == sim::ProcState::ready &&
          (p->affinity_mask() & (1ull << thief))) {
        fifo.erase(std::next(pit).base());
        --q.size;
        return p;
      }
    }
  }
  return nullptr;
}

std::vector<Process*> LinuxLikeScheduler::pick_candidates(CpuId cpu) const {
  std::vector<Process*> out;
  const auto& q = rq(cpu);
  for (const auto& [prio, fifo] : q.by_prio) {
    for (Process* p : fifo) {
      if (p->state() == sim::ProcState::ready) out.push_back(p);
    }
    if (!out.empty()) return out;  // highest level with a ready task
  }
  return out;
}

bool LinuxLikeScheduler::take(Process& p, CpuId cpu) {
  auto& q = rq(cpu);
  const auto it = q.by_prio.find(p.priority());
  if (it == q.by_prio.end()) return false;
  auto& fifo = it->second;
  const auto pit = std::find(fifo.begin(), fifo.end(), &p);
  if (pit == fifo.end()) return false;
  fifo.erase(pit);
  --q.size;
  if (fifo.empty()) q.by_prio.erase(it);
  return true;
}

void LinuxLikeScheduler::remove(const Process& p) {
  for (auto& q : queues_) {
    for (auto& [prio, fifo] : q.by_prio) {
      auto it = std::find(fifo.begin(), fifo.end(), &p);
      if (it != fifo.end()) {
        fifo.erase(it);
        --q.size;
        return;
      }
    }
  }
}

bool LinuxLikeScheduler::should_preempt(const Process& woken,
                                        const Process& running) const {
  if (woken.priority() > running.priority()) return true;
  if (params_.wake_preempts_equal_priority &&
      woken.priority() == running.priority()) {
    return true;
  }
  return false;
}

bool LinuxLikeScheduler::should_yield_on_expiry(const Process& running,
                                                CpuId cpu) const {
  const auto& q = rq(cpu);
  for (const auto& [prio, fifo] : q.by_prio) {
    if (prio < running.priority()) break;  // map is sorted descending
    for (const Process* p : fifo) {
      if (p->state() == sim::ProcState::ready) return true;
    }
  }
  return false;
}

Duration LinuxLikeScheduler::fresh_slice(const Process& p) const {
  (void)p;
  return params_.timeslice;
}

std::size_t LinuxLikeScheduler::queue_depth(CpuId cpu) const {
  return rq(cpu).size;
}

}  // namespace tocttou::sched
