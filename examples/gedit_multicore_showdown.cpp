// gedit on the multi-core: why the attacker's *implementation* decides
// the race when the window is microseconds wide (paper Section 6.2).
// Runs attack program v1 (Figure 4) and v2 (Figure 9) against the same
// victim and shows a Figure-8/Figure-10 style timeline for each.
//
//   ./build/examples/gedit_multicore_showdown [rounds]
#include <cstdio>
#include <cstdlib>

#include "tocttou/core/harness.h"
#include "tocttou/trace/trace.h"

namespace {

using namespace tocttou;

core::ScenarioConfig make_cfg(core::AttackerKind attacker,
                              std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.profile = programs::testbed_multicore_pentium_d();
  cfg.victim = core::VictimKind::gedit;
  cfg.attacker = attacker;
  cfg.file_bytes = 16 * 1024;
  cfg.seed = seed;
  return cfg;
}

void show_timeline(const char* title, core::AttackerKind attacker,
                   bool want_success) {
  for (std::uint64_t seed = 1; seed < 256; ++seed) {
    auto cfg = make_cfg(attacker, seed);
    cfg.record_journal = true;
    cfg.record_events = true;
    const auto r = core::run_round(cfg);
    if (r.success != want_success || !r.window || !r.window->detected) {
      continue;
    }
    std::printf("\n--- %s (seed %llu) ---\n", title,
                static_cast<unsigned long long>(seed));
    if (r.window->laxity && r.window->d) {
      std::printf("L = %.1fus, D = %.1fus -> formula (1) rate %.0f%%\n",
                  r.window->laxity->us(), r.window->d->us(),
                  *r.window->predicted_rate() * 100.0);
    }
    trace::GanttOptions opts;
    opts.width = 110;
    opts.from = r.window->window_open - Duration::micros(30);
    opts.to = r.window->t3 + Duration::micros(40);
    std::printf("%s", trace::render_gantt(r.trace.log, opts).c_str());
    return;
  }
  std::printf("\n--- %s: no representative round found ---\n", title);
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 200;
  // All cores; the campaign engine is deterministic at any job count.
  const int jobs = argc > 2 ? std::atoi(argv[2]) : 0;

  const auto v1 = core::run_campaign(make_cfg(core::AttackerKind::naive, 7),
                                     rounds, /*measure_ld=*/false, jobs);
  const auto v2 =
      core::run_campaign(make_cfg(core::AttackerKind::prefaulted, 7), rounds,
                         /*measure_ld=*/false, jobs);

  std::printf("gedit <rename, chown> attack on the multi-core, %d rounds:\n",
              rounds);
  std::printf("  attack program v1 (Figure 4):  %s\n",
              v1.summary().c_str());
  std::printf("  attack program v2 (Figure 9):  %s\n",
              v2.summary().c_str());
  std::printf(
      "\nv1 loses because its first unlink page-faults (6us) on top of "
      "11us of\ncomputation, while gedit's rename->chmod gap is only 3us. "
      "v2 pre-faults\nthe libc page by calling unlink/symlink on a dummy "
      "file every iteration.\n");

  show_timeline("FAILED v1 attack (Figure 8)", core::AttackerKind::naive,
                /*want_success=*/false);
  show_timeline("SUCCESSFUL v2 attack (Figure 10)",
                core::AttackerKind::prefaulted, /*want_success=*/true);
  return 0;
}
