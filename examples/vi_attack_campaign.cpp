// vi attack campaign: the paper's headline contrast in one run — the
// same attack against the same victim is a coin-flip-with-bad-odds on a
// uniprocessor and near-certain on an SMP.
//
//   ./build/examples/vi_attack_campaign [rounds] [jobs]
#include <cstdio>
#include <cstdlib>

#include "tocttou/common/stats.h"
#include "tocttou/core/harness.h"
#include "tocttou/core/model.h"

int main(int argc, char** argv) {
  using namespace tocttou;
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 100;
  // All cores by default; same numbers at any job count.
  const int jobs = argc > 2 ? std::atoi(argv[2]) : 0;

  TextTable table({"file size", "uniprocessor", "SMP (2 CPUs)",
                   "Eq.1 UP prediction"});
  core::ViModelParams model;

  for (std::uint64_t kb : {1, 100, 300, 600, 1000}) {
    const std::uint64_t bytes = kb == 1 ? 1 : kb * 1024;

    core::ScenarioConfig cfg;
    cfg.victim = core::VictimKind::vi;
    cfg.attacker = core::AttackerKind::naive;
    cfg.file_bytes = bytes;
    cfg.seed = 90 + kb;

    cfg.profile = programs::testbed_uniprocessor_xeon();
    const auto up =
        core::run_campaign(cfg, rounds, /*measure_ld=*/false, jobs);
    cfg.profile = programs::testbed_smp_dual_xeon();
    const auto mp =
        core::run_campaign(cfg, rounds, /*measure_ld=*/false, jobs);

    table.add_row({kb == 1 ? "1 byte" : std::to_string(kb) + "KB",
                   TextTable::pct(up.success.rate()),
                   TextTable::pct(mp.success.rate()),
                   TextTable::pct(core::vi_uniprocessor_prediction(model,
                                                                   bytes))});
    std::printf(".");
    std::fflush(stdout);
  }

  std::printf(
      "\n\nvi <open, chown> attack, %d rounds per cell "
      "(root saves a file owned by the attacker):\n\n%s\n",
      rounds, table.render().c_str());
  std::printf(
      "The second processor turns a 'low risk' race into a reliable "
      "exploit:\nthe attacker polls from its own CPU instead of waiting "
      "for the victim\nto be suspended (DSN'07, Sections 4-5).\n");
  return 0;
}
