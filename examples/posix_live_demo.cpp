// Live demonstration on the host: stages the gedit-style race with real
// syscalls in a scratch directory (no privileges needed — success is the
// victim's chmod landing on a decoy through the attacker's symlink).
//
//   ./build/examples/posix_live_demo [rounds [gap_spins]]
#include <cstdio>
#include <cstdlib>

#include "tocttou/posix/live_race.h"
#include "tocttou/posix/scratch.h"

int main(int argc, char** argv) {
  using namespace tocttou;

  posix::LiveRaceConfig cfg;
  cfg.rounds = argc > 1 ? std::atoi(argv[1]) : 100;
  cfg.victim_gap_spins =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 30000;

  std::printf("host: %d online CPU(s)\n", posix::online_cpus());
  const auto costs = posix::measure_host_syscall_costs();
  std::printf(
      "host syscall costs: stat %.2fus, unlink %.2fus, symlink %.2fus, "
      "rename %.2fus\n\n",
      costs.stat_us, costs.unlink_us, costs.symlink_us, costs.rename_us);

  std::printf("running %d live race rounds (victim gap ~%llu spins)...\n",
              cfg.rounds,
              static_cast<unsigned long long>(cfg.victim_gap_spins));
  const auto res = posix::run_live_race(cfg);

  std::printf("\nresults (%s):\n",
              res.cpus > 1 && res.threads_pinned
                  ? "threads pinned to separate CPUs - the paper's "
                    "multiprocessor setting"
                  : "single CPU - the paper's uniprocessor setting");
  std::printf("  detections: %d/%d\n", res.detections, res.rounds);
  std::printf("  successes:  %d/%d = %.1f%%\n", res.successes, res.rounds,
              res.success_rate() * 100.0);
  std::printf("  victim window: mean %.1fus (sd %.1f)\n",
              res.window_us.mean(), res.window_us.stdev());
  std::printf(
      "\nOn a multi-core host the attacker polls from its own CPU and the "
      "rate\nis high; on a single CPU it only wins when the victim is "
      "preempted\ninside the window — exactly the paper's claim.\n");
  return 0;
}
