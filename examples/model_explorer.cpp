// Interactive-ish explorer for the Section 3 probabilistic model: feed
// it L, D and P(victim suspended) and it prints the uniprocessor and
// multiprocessor success rates, plus a small L/D sensitivity sweep.
//
//   ./build/examples/model_explorer [L_us [D_us [p_suspended]]]
//   ./build/examples/model_explorer 11.6 32.7 0.0     # Table 2's inputs
#include <cstdio>
#include <cstdlib>

#include "tocttou/core/model.h"

int main(int argc, char** argv) {
  using namespace tocttou;
  const double l_us = argc > 1 ? std::atof(argv[1]) : 61.6;
  const double d_us = argc > 2 ? std::atof(argv[2]) : 41.1;
  const double p_susp = argc > 3 ? std::atof(argv[3]) : 0.02;

  const auto l = Duration::micros_f(l_us);
  const auto d = Duration::micros_f(d_us);

  std::printf("inputs: L = %.1fus, D = %.1fus, P(victim suspended) = %.3f\n\n",
              l_us, d_us, p_susp);

  const double laxity = core::laxity_success_rate(l, d);
  std::printf("formula (1): clamp(L/D, 0, 1) = %.1f%%\n", laxity * 100.0);

  const double noisy = core::noisy_laxity_success_rate(
      l, Duration::micros_f(l_us * 0.1), d, Duration::micros_f(d_us * 0.1));
  std::printf("with 10%% Gaussian noise on L and D: %.1f%%\n\n",
              noisy * 100.0);

  const auto up = core::Equation1::uniprocessor(p_susp);
  const auto mp = core::Equation1::multiprocessor(p_susp, l, d);
  std::printf("Equation 1, uniprocessor:   P(success) = %.1f%%"
              "   (bounded by P(suspended))\n",
              up.success() * 100.0);
  std::printf("Equation 1, multiprocessor: P(success) = %.1f%%\n\n",
              mp.success() * 100.0);

  std::printf("L/D sensitivity (D fixed at %.1fus):\n", d_us);
  std::printf("  %8s  %12s  %12s\n", "L (us)", "formula (1)", "noisy");
  for (double frac : {-0.25, 0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0}) {
    const auto lx = Duration::micros_f(d_us * frac);
    std::printf("  %8.1f  %11.1f%%  %11.1f%%\n", d_us * frac,
                core::laxity_success_rate(lx, d) * 100.0,
                core::noisy_laxity_success_rate(
                    lx, Duration::micros_f(d_us * 0.1), d,
                    Duration::micros_f(d_us * 0.1)) *
                    100.0);
  }
  std::printf(
      "\nReading: the attacker wants small D (fast detection loop) and a "
      "victim\nwith large L (wide window). Multiprocessors hand the "
      "attacker the\nP(sched | victim running) = 1 term that "
      "uniprocessors deny them.\n");
  return 0;
}
