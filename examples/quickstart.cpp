// Quickstart: run one vi attack round on the simulated SMP and show what
// happened — the round verdict, the measured L and D, and a Gantt chart
// of the race (the style of the paper's Figures 8 and 10).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "tocttou/core/harness.h"
#include "tocttou/trace/trace.h"

int main(int argc, char** argv) {
  using namespace tocttou;

  core::ScenarioConfig cfg;
  cfg.profile = programs::testbed_smp_dual_xeon();
  cfg.victim = core::VictimKind::vi;
  cfg.attacker = core::AttackerKind::naive;
  cfg.file_bytes = 1;  // the paper's hardest case: a 1-byte file
  cfg.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  cfg.record_journal = true;
  cfg.record_events = true;

  std::printf("testbed:  %s\n", cfg.profile.name.c_str());
  std::printf("victim:   %s saving a %llu-byte file as root\n",
              core::to_string(cfg.victim),
              static_cast<unsigned long long>(cfg.file_bytes));
  std::printf("attacker: %s (Figure 2's detection loop)\n\n",
              core::to_string(cfg.attacker));

  const core::RoundResult r = core::run_round(cfg);

  std::printf("verdict:  %s\n",
              r.success ? "SUCCESS - /etc/passwd now belongs to the attacker"
                        : "failed - the window was missed");
  if (r.window && r.window->window_found) {
    std::printf("window:   %.1f us (open -> chown)\n",
                r.window->victim_window().us());
    if (r.window->laxity && r.window->d) {
      std::printf("L = %.1f us, D = %.1f us -> formula (1) predicts %.0f%%\n",
                  r.window->laxity->us(), r.window->d->us(),
                  *r.window->predicted_rate() * 100.0);
    }
  }
  std::printf("events:   %llu simulated kernel events\n\n",
              static_cast<unsigned long long>(r.events));

  // Zoom the Gantt onto the vulnerability window.
  trace::GanttOptions opts;
  opts.width = 110;
  if (r.window && r.window->window_found) {
    opts.from = r.window->window_open - Duration::micros(60);
    opts.to = r.window->t3 + Duration::micros(60);
  }
  std::printf("%s\n", trace::render_gantt(r.trace.log, opts).c_str());
  return r.success ? 0 : 1;
}
